#include "src/sweepd/spool.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/runner/cli_options.h"
#include "src/util/atomic_file.h"
#include "src/util/heartbeat.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

namespace fs = std::filesystem;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::string JoinIndices(const std::vector<std::size_t>& points) {
  std::ostringstream out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << points[i];
  }
  return out.str();
}

bool SplitIndices(const std::string& text, std::vector<std::size_t>* points,
                  std::string* error) {
  points->clear();
  std::size_t start = 0;
  while (start <= text.size() && !text.empty()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    const auto value = ParseUint64(token);
    if (!value) {
      SetError(error, "bad point index '" + token + "' in work item");
      return false;
    }
    points->push_back(static_cast<std::size_t>(*value));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return true;
}

}  // namespace

std::string WorkItemToJson(const WorkItem& item) {
  ResultRow row;
  row.AddText("id", item.id);
  row.AddInt("shard", item.shard);
  row.AddInt("shards", item.shards);
  row.AddInt("attempt", item.attempt);
  row.AddText("points", JoinIndices(item.points));
  return RowToJson(row);
}

std::optional<WorkItem> WorkItemFromJson(const std::string& text,
                                         std::string* error) {
  const auto row = RowFromJson(text, error);
  if (!row) {
    return std::nullopt;
  }
  WorkItem item;
  item.id = row->Text("id");
  if (item.id.empty()) {
    SetError(error, "work item without an id");
    return std::nullopt;
  }
  item.shard = static_cast<std::size_t>(row->Number("shard", 0));
  item.shards = static_cast<std::size_t>(row->Number("shards", 1));
  item.attempt = static_cast<std::size_t>(row->Number("attempt", 0));
  if (!SplitIndices(row->Text("points"), &item.points, error)) {
    return std::nullopt;
  }
  return item;
}

std::optional<Spool> Spool::Create(const std::string& root,
                                   const std::string& spec_text,
                                   const std::string& name, std::size_t shards,
                                   std::string* error) {
  if (shards == 0) {
    SetError(error, "shard count must be > 0");
    return std::nullopt;
  }
  // The spool stores the spec as parseable source text, verbatim: every
  // worker parses the exact bytes the dispatcher validated here, so they
  // cannot disagree about the grid or its fingerprint.  (CanonicalSpecText
  // is fingerprint material, not round-trippable input.)
  const auto spec = ParseExperimentSpec(spec_text, error);
  if (!spec) {
    return std::nullopt;
  }
  Spool spool(root);
  std::error_code ec;
  if (fs::exists(spool.MetaPath(), ec)) {
    SetError(error, root + " already holds a spool (delete it to start over; "
                           "a half-finished spool is resumable state)");
    return std::nullopt;
  }
  for (const char* state : {"queue", "running", "done", "failed"}) {
    fs::create_directories(root + "/" + state, ec);
    if (ec) {
      SetError(error, "cannot create " + root + "/" + state + ": " + ec.message());
      return std::nullopt;
    }
  }
  std::string write_error;
  if (!WriteFileAtomic(spool.SpecPath(), spec_text, &write_error)) {
    SetError(error, write_error);
    return std::nullopt;
  }
  ResultRow meta;
  meta.AddText("name", name);
  meta.AddText("spec_hash", SpecFingerprint(*spec));
  meta.AddInt("shards", shards);
  meta.AddInt("points", GridSize(*spec));
  meta.AddText("created", NowUtc());
  meta.AddText("host", HostName());
  if (!WriteFileAtomic(spool.MetaPath(), RowToJson(meta) + "\n", &write_error)) {
    SetError(error, write_error);
    return std::nullopt;
  }
  for (std::size_t shard = 0; shard < shards; ++shard) {
    char id[32];
    std::snprintf(id, sizeof(id), "shard-%04zu", shard);
    WorkItem item;
    item.id = id;
    item.shard = shard;
    item.shards = shards;
    if (!spool.Enqueue(item, error)) {
      return std::nullopt;
    }
  }
  ResultRow event;
  event.AddText("event", "created");
  event.AddInt("shards", shards);
  event.AddInt("points", GridSize(*spec));
  spool.AppendEvent(std::move(event));
  return spool;
}

std::optional<SpoolMeta> Spool::ReadMeta(std::string* error) const {
  std::string data;
  if (!ReadFileToString(MetaPath(), &data, error)) {
    return std::nullopt;
  }
  // Trim the trailing newline; RowFromJson wants one object.
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  const auto row = RowFromJson(data, error);
  if (!row) {
    return std::nullopt;
  }
  SpoolMeta meta;
  meta.name = row->Text("name");
  meta.spec_hash = row->Text("spec_hash");
  meta.shards = static_cast<std::size_t>(row->Number("shards", 0));
  meta.points = static_cast<std::size_t>(row->Number("points", 0));
  meta.created = row->Text("created");
  meta.host = row->Text("host");
  if (meta.name.empty() || meta.spec_hash.empty() || meta.shards == 0) {
    SetError(error, MetaPath() + ": incomplete spool metadata");
    return std::nullopt;
  }
  return meta;
}

std::optional<ExperimentSpec> Spool::LoadSpec(std::string* error) const {
  std::string text;
  if (!ReadFileToString(SpecPath(), &text, error)) {
    return std::nullopt;
  }
  return ParseExperimentSpec(text, error);
}

std::optional<std::string> Spool::ReadSpecText(std::string* error) const {
  std::string text;
  if (!ReadFileToString(SpecPath(), &text, error)) {
    return std::nullopt;
  }
  return text;
}

bool Spool::Enqueue(const WorkItem& item, std::string* error) const {
  return WriteFileAtomic(TaskPath("queue", item.id), WorkItemToJson(item) + "\n",
                         error);
}

std::optional<WorkItem> Spool::Claim(std::uint64_t owner, std::string* error) const {
  SetError(error, "");
  for (const std::string& id : ListIds("queue")) {
    std::error_code ec;
    // The rename is the lease: of N racing claimants exactly one succeeds,
    // the others see ENOENT here and try the next item.
    fs::rename(TaskPath("queue", id), TaskPath("running", id), ec);
    if (ec) {
      continue;
    }
    std::string read_error;
    auto item = ReadItem("running", id, &read_error);
    if (!item) {
      SetError(error, "claimed item " + id + ": " + read_error);
      return std::nullopt;
    }
    WriteHeartbeat(HeartbeatPath(id), {0, owner});
    return item;
  }
  return std::nullopt;  // queue empty (error left empty)
}

bool Spool::FinishItem(const WorkItem& item, std::string* error) const {
  std::error_code ec;
  fs::rename(TaskPath("running", item.id), TaskPath("done", item.id), ec);
  if (ec) {
    // Lease lost: a dispatcher requeued this item under a stale-heartbeat
    // verdict and someone else may own it now.  Leave every file alone.
    SetError(error, "lease lost for " + item.id + " (" + ec.message() + ")");
    return false;
  }
  fs::remove(HeartbeatPath(item.id), ec);
  for (const std::string& part : PartPaths(item.id)) {
    fs::remove(part, ec);
  }
  return true;
}

bool Spool::Requeue(const WorkItem& item, std::string* error) const {
  WorkItem next = item;
  next.attempt = item.attempt + 1;
  // Queue copy first, running copy second: a crash in between duplicates the
  // item (benign — results are deterministic and merges dedup), never loses it.
  if (!Enqueue(next, error)) {
    return false;
  }
  std::error_code ec;
  fs::remove(TaskPath("running", item.id), ec);
  fs::remove(HeartbeatPath(item.id), ec);
  return true;
}

bool Spool::FailItem(const WorkItem& item, const std::string& state_from,
                     std::string* error) const {
  if (!WriteFileAtomic(TaskPath("failed", item.id), WorkItemToJson(item) + "\n",
                       error)) {
    return false;
  }
  std::error_code ec;
  fs::remove(TaskPath(state_from, item.id), ec);
  fs::remove(HeartbeatPath(item.id), ec);
  return true;
}

std::vector<std::string> Spool::ListIds(const std::string& state) const {
  std::vector<std::string> ids;
  std::error_code ec;
  fs::directory_iterator it(root_ + "/" + state, ec);
  if (ec) {
    return ids;
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".task";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      ids.push_back(name.substr(0, name.size() - suffix.size()));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<WorkItem> Spool::ReadItem(const std::string& state,
                                        const std::string& id,
                                        std::string* error) const {
  std::string data;
  if (!ReadFileToString(TaskPath(state, id), &data, error)) {
    return std::nullopt;
  }
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  return WorkItemFromJson(data, error);
}

std::vector<std::string> Spool::PartPaths(const std::string& id) const {
  std::vector<std::string> parts;
  std::error_code ec;
  fs::directory_iterator it(root_ + "/running", ec);
  if (ec) {
    return parts;
  }
  const std::string prefix = id + ".a";
  const std::string suffix = ".jsonl.part";
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + suffix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      parts.push_back(entry.path().string());
    }
  }
  std::sort(parts.begin(), parts.end());
  return parts;
}

Spool::Counts Spool::CountItems() const {
  Counts counts;
  counts.queued = ListIds("queue").size();
  counts.running = ListIds("running").size();
  counts.done = ListIds("done").size();
  counts.failed = ListIds("failed").size();
  return counts;
}

void Spool::AppendEvent(ResultRow event) const {
  ResultRow stamped;
  stamped.AddText("ts", NowUtc());
  for (ResultField& field : event.fields) {
    stamped.fields.push_back(std::move(field));
  }
  std::ofstream out(EventsPath(), std::ios::app);
  if (out) {
    out << RowToJson(stamped) << "\n";
  }
}

}  // namespace mobisim
