#include "src/sweepd/worker.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/runner/cli_options.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/merge.h"
#include "src/sweepd/spool.h"
#include "src/trace/trace_cache.h"
#include "src/util/atomic_file.h"
#include "src/util/heartbeat.h"

namespace mobisim {

namespace {

// One claimed item, end to end: resume, simulate, finalize.
void RunOneItem(const Spool& spool, const SpoolMeta& meta,
                const ExperimentSpec& spec, const WorkItem& item,
                const WorkerOptions& options, TraceCache* trace_cache,
                std::atomic<std::uint64_t>* total_rows, WorkerSummary* summary) {
  // Resolve the item to its concrete points (global indices throughout).
  std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  points = item.points.empty() ? FilterShard(std::move(points), item.shard, item.shards)
                               : FilterPoints(std::move(points), item.points);

  // Resume: rows a dead predecessor already streamed are inherited, not
  // re-simulated.  Every attempt's part file is read (two part files can
  // coexist after a spurious requeue); exact duplicates merge away later.
  std::map<std::uint64_t, ResultRow> inherited;
  for (const std::string& part : spool.PartPaths(item.id)) {
    for (ResultRow& row : LoadPartialRows(part)) {
      const auto index = PointIndexOf(row);
      if (index) {
        inherited.emplace(*index, std::move(row));
      }
    }
  }
  if (!inherited.empty()) {
    std::vector<ExperimentPoint> remaining;
    for (ExperimentPoint& point : points) {
      if (inherited.find(point.index) == inherited.end()) {
        remaining.push_back(std::move(point));
      }
    }
    points = std::move(remaining);
    summary->resumed += inherited.size();
  }

  // Stream this attempt's rows to its own part file, flushed per row so a
  // kill loses at most the in-flight row.
  const std::string part_path = spool.PartPath(item.id, item.attempt);
  std::ofstream part(part_path, std::ios::app);
  JsonlResultSink part_sink(part);

  std::atomic<std::uint64_t> item_rows{0};
  HeartbeatThread heartbeat;
  heartbeat.Start(spool.HeartbeatPath(item.id), options.heartbeat_sec,
                  options.owner, [&item_rows] { return item_rows.load(); });

  SweepOptions sweep_options;
  sweep_options.threads = options.jobs;
  sweep_options.sinks = {&part_sink};
  sweep_options.trace_cache = trace_cache;
  sweep_options.on_emit = [&](const SweepOutcome& outcome) {
    (void)outcome;
    part.flush();
    item_rows.fetch_add(1);
    const std::uint64_t total = total_rows->fetch_add(1) + 1;
    if (options.throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_ms));
    }
    if (options.kill_after_rows > 0 && total >= options.kill_after_rows) {
      // Injected death: no destructors, no finalization, lease left behind —
      // exactly what SIGKILL mid-shard looks like to the spool.
      std::_Exit(137);
    }
  };

  const std::vector<SweepOutcome> outcomes = RunSweep(points, sweep_options);
  heartbeat.Stop();

  // Finalize: inherited + fresh rows in global index order, published
  // atomically to done/ before the task file moves there.
  std::map<std::uint64_t, ResultRow> rows = std::move(inherited);
  for (const SweepOutcome& outcome : outcomes) {
    rows[outcome.point.index] = outcome.row;
  }
  std::size_t error_rows = 0;
  for (const auto& [index, row] : rows) {
    (void)index;
    if (IsErrorRow(row)) {
      ++error_rows;
    }
  }

  RunMeta run_meta;
  run_meta.spec_name = meta.name;
  run_meta.spec_hash = meta.spec_hash;
  run_meta.git_sha = DefaultGitSha();
  run_meta.created = NowUtc();
  run_meta.host = HostName();
  run_meta.points = rows.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(run_meta)) << "\n";
  for (const auto& [index, row] : rows) {
    (void)index;
    out << RowToJson(row) << "\n";
  }
  std::string error;
  if (!WriteFileAtomic(spool.RowsPath(item.id), out.str(), &error)) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << item.id << ": " << error << "\n";
    }
    return;  // leave the lease; the dispatcher will requeue after expiry
  }
  part.close();
  if (!spool.FinishItem(item, &error)) {
    // Lease lost to a requeue while we were finishing.  The rows file is in
    // place and deterministic, so the re-run converges to the same bytes.
    ++summary->lost_leases;
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << error << "\n";
    }
    return;
  }

  summary->rows += outcomes.size();
  summary->error_rows += error_rows;
  ResultRow event;
  event.AddText("event", error_rows > 0 ? "shard_poisoned" : "shard_done");
  event.AddText("item", item.id);
  event.AddInt("attempt", item.attempt);
  event.AddInt("rows", rows.size());
  event.AddInt("error_rows", error_rows);
  event.AddInt("owner", options.owner);
  spool.AppendEvent(std::move(event));
  if (options.log != nullptr) {
    *options.log << "sweepd-worker: " << item.id << " done (" << rows.size()
                 << " rows, " << error_rows << " errors)\n";
  }
}

}  // namespace

WorkerSummary RunWorkerLoop(const WorkerOptions& options) {
  WorkerSummary summary;
  Spool spool(options.spool_root);
  std::string error;
  const auto meta = spool.ReadMeta(&error);
  if (!meta) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << error << "\n";
    }
    return summary;
  }
  const auto spec = spool.LoadSpec(&error);
  if (!spec) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: spec: " << error << "\n";
    }
    return summary;
  }
  WorkerOptions resolved = options;
  if (resolved.owner == 0) {
    resolved.owner = static_cast<std::uint64_t>(::getpid());
  }
  std::unique_ptr<TraceCache> trace_cache;
  if (!resolved.trace_cache_dir.empty()) {
    trace_cache = std::make_unique<TraceCache>(resolved.trace_cache_dir);
  }

  std::atomic<std::uint64_t> total_rows{0};
  while (true) {
    auto item = spool.Claim(resolved.owner, &error);
    if (!item) {
      if (!error.empty() && options.log != nullptr) {
        *options.log << "sweepd-worker: claim: " << error << "\n";
      }
      break;  // queue drained (or unreadable): this worker is finished
    }
    ++summary.items;
    RunOneItem(spool, *meta, *spec, *item, resolved, trace_cache.get(),
               &total_rows, &summary);
  }
  return summary;
}

namespace {

// Parses a flat-JSON response body (trailing newline tolerated).
std::optional<ResultRow> ParseResponseRow(const std::string& body) {
  std::string text = body;
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  std::string error;
  return RowFromJson(text, &error);
}

// "3,7,19" -> {3, 7, 19}; malformed tokens are skipped (the resume set is
// an optimization — re-simulating a point is always safe).
std::set<std::uint64_t> ParseIndexSet(const std::string& text) {
  std::set<std::uint64_t> indices;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string token = text.substr(start, comma - start);
    start = comma + 1;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0') {
      indices.insert(static_cast<std::uint64_t>(value));
    }
  }
  return indices;
}

std::string TokenLine(const std::string& token) {
  ResultRow row;
  row.AddText("token", token);
  return RowToJson(row) + "\n";
}

// Background /heartbeat POSTs for one leased item.  Owns its own HttpClient
// (HttpClient is not thread-safe) and never sees injected faults — on a real
// deployment heartbeats share the network's fate, but in fault-injection
// tests a dropped heartbeat would only add nondeterministic lease churn on
// top of the request-path faults under test.
class RemoteHeartbeat {
 public:
  RemoteHeartbeat(const RemoteWorkerOptions& options, std::string token,
                  const std::atomic<std::uint64_t>* rows,
                  std::atomic<bool>* lease_lost)
      : token_(std::move(token)), rows_(rows), lease_lost_(lease_lost) {
    HttpClientOptions http = options.http;
    http.max_retries = 0;  // a missed beat is fine; the next one is soon
    client_ = std::make_unique<HttpClient>(options.host, options.port, http);
    interval_sec_ = options.heartbeat_sec;
    thread_ = std::thread([this] { Loop(); });
  }

  ~RemoteHeartbeat() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  void Loop() {
    while (true) {
      Beat();
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock, std::chrono::duration<double>(interval_sec_),
                     [this] { return stopping_; });
      if (stopping_ || lease_lost_->load()) {
        return;
      }
    }
  }

  void Beat() {
    ResultRow body;
    body.AddText("token", token_);
    body.AddInt("rows", rows_->load());
    HttpResponse response;
    std::string error;
    if (!client_->Fetch("POST", "/heartbeat", RowToJson(body) + "\n",
                        &response, &error)) {
      return;  // transport failure: the lease survives until lease_sec
    }
    if (response.status == 410) {
      lease_lost_->store(true);
    }
  }

  std::string token_;
  const std::atomic<std::uint64_t>* rows_;
  std::atomic<bool>* lease_lost_;
  std::unique_ptr<HttpClient> client_;
  double interval_sec_ = 1.0;
  std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

// One granted lease, end to end: simulate the remaining points, stream row
// chunks, finalize with /done.
void RunOneRemoteItem(const ResultRow& grant, const RemoteWorkerOptions& options,
                      HttpClient* client, TraceCache* trace_cache,
                      std::atomic<std::uint64_t>* total_rows,
                      RemoteWorkerSummary* summary) {
  const std::string token = grant.Text("token");
  std::string item_error;
  const auto item = WorkItemFromJson(grant.Text("item"), &item_error);
  std::string spec_error;
  const auto spec = ParseExperimentSpec(grant.Text("spec"), &spec_error);
  if (!item || !spec) {
    // A dispatcher handing out unparseable work is not retryable from here;
    // drop the lease (it expires server-side) and report it lost.
    ++summary->lost_leases;
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: bad lease: "
                   << (item ? spec_error : item_error) << "\n";
    }
    return;
  }

  std::vector<ExperimentPoint> points = EnumerateGrid(*spec);
  points = item->points.empty()
               ? FilterShard(std::move(points), item->shard, item->shards)
               : FilterPoints(std::move(points), item->points);
  const std::set<std::uint64_t> done = ParseIndexSet(grant.Text("done_points"));
  if (!done.empty()) {
    std::vector<ExperimentPoint> remaining;
    for (ExperimentPoint& point : points) {
      if (done.find(point.index) == done.end()) {
        remaining.push_back(std::move(point));
      }
    }
    summary->inherited += points.size() - remaining.size();
    points = std::move(remaining);
  }

  std::atomic<std::uint64_t> item_rows{0};
  std::atomic<bool> lease_lost{false};
  RemoteHeartbeat heartbeat(options, token, &item_rows, &lease_lost);

  // Upload state, touched only from on_emit (RunSweep serializes emits).
  std::string pending;
  std::size_t pending_rows = 0;
  bool upload_failed = false;
  const auto flush_chunk = [&]() {
    if (pending.empty() || upload_failed || lease_lost.load()) {
      return;
    }
    HttpResponse response;
    std::string error;
    if (!client->FetchWithRetry("POST", "/results", TokenLine(token) + pending,
                                &response, &error)) {
      upload_failed = true;  // keep simulating; the lease expires server-side
      if (options.log != nullptr) {
        *options.log << "sweepd-worker: upload: " << error << "\n";
      }
      return;
    }
    if (response.status == 410) {
      lease_lost.store(true);
      return;
    }
    if (response.status != 200) {
      upload_failed = true;
      if (options.log != nullptr) {
        *options.log << "sweepd-worker: upload rejected: " << response.body;
      }
      return;
    }
    pending.clear();
    pending_rows = 0;
  };

  SweepOptions sweep_options;
  sweep_options.threads = options.jobs;
  sweep_options.trace_cache = trace_cache;
  sweep_options.on_emit = [&](const SweepOutcome& outcome) {
    pending += RowToJson(outcome.row) + "\n";
    ++pending_rows;
    item_rows.fetch_add(1);
    const std::uint64_t total = total_rows->fetch_add(1) + 1;
    if (pending_rows >= options.chunk_rows) {
      flush_chunk();
    }
    if (options.throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_ms));
    }
    if (options.kill_after_rows > 0 && total >= options.kill_after_rows) {
      // Injected death mid-upload-stream: no /done, no heartbeat stop —
      // SIGKILL as far as the dispatcher can tell.
      std::_Exit(137);
    }
  };

  const std::vector<SweepOutcome> outcomes = RunSweep(points, sweep_options);
  heartbeat.Stop();
  if (lease_lost.load()) {
    ++summary->lost_leases;
    return;
  }
  if (!upload_failed) {
    flush_chunk();
  }
  if (upload_failed || lease_lost.load()) {
    ++summary->lost_leases;
    return;
  }

  // Finalize.  One 409 ("incomplete upload") repair pass: re-send every row
  // this worker simulated — the server's fingerprint dedup makes the full
  // replay cheap and harmless — then try /done once more.
  for (int round = 0;; ++round) {
    HttpResponse response;
    std::string error;
    ResultRow done_body;
    done_body.AddText("token", token);
    if (!client->FetchWithRetry("POST", "/done", RowToJson(done_body) + "\n",
                                &response, &error)) {
      ++summary->lost_leases;
      if (options.log != nullptr) {
        *options.log << "sweepd-worker: done: " << error << "\n";
      }
      return;
    }
    if (response.status == 200) {
      break;
    }
    if (response.status == 409 && round == 0) {
      std::string replay;
      for (const SweepOutcome& outcome : outcomes) {
        replay += RowToJson(outcome.row) + "\n";
      }
      HttpResponse replay_response;
      if (!replay.empty() &&
          client->FetchWithRetry("POST", "/results", TokenLine(token) + replay,
                                 &replay_response, &error) &&
          replay_response.status == 200) {
        continue;
      }
    }
    ++summary->lost_leases;
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: done rejected (" << response.status
                   << "): " << response.body;
    }
    return;
  }

  ++summary->items;
  summary->rows += outcomes.size();
  for (const SweepOutcome& outcome : outcomes) {
    if (IsErrorRow(outcome.row)) {
      ++summary->error_rows;
    }
  }
  if (options.log != nullptr) {
    *options.log << "sweepd-worker: " << item->id << " done ("
                 << outcomes.size() << " rows)\n";
  }
}

}  // namespace

RemoteWorkerSummary RunRemoteWorkerLoop(const RemoteWorkerOptions& options) {
  RemoteWorkerSummary summary;
  RemoteWorkerOptions resolved = options;
  if (resolved.worker_name.empty()) {
    resolved.worker_name =
        HostName() + ":" + std::to_string(static_cast<long>(::getpid()));
  }
  // Distinct default jitter seeds keep a fleet's retry backoffs unsynchronized
  // even when every worker launched with the same command line.
  if (resolved.http.jitter_seed == HttpClientOptions{}.jitter_seed) {
    resolved.http.jitter_seed = static_cast<std::uint64_t>(::getpid());
  }

  NetFaultInjector injector(resolved.net_fault);
  HttpClient client(resolved.host, resolved.port, resolved.http);
  if (resolved.net_fault.enabled()) {
    client.set_fault_injector(&injector);
  }

  std::unique_ptr<TraceCache> trace_cache;
  if (!resolved.trace_cache_dir.empty()) {
    trace_cache = std::make_unique<TraceCache>(resolved.trace_cache_dir);
  }

  std::atomic<std::uint64_t> total_rows{0};
  while (true) {
    ResultRow request;
    request.AddText("worker", resolved.worker_name);
    HttpResponse response;
    std::string error;
    if (!client.FetchWithRetry("POST", "/lease", RowToJson(request) + "\n",
                               &response, &error)) {
      summary.unreachable = true;
      if (resolved.log != nullptr) {
        *resolved.log << "sweepd-worker: dispatcher unreachable: " << error
                      << "\n";
      }
      break;
    }
    if (response.status != 200) {
      if (resolved.log != nullptr) {
        *resolved.log << "sweepd-worker: lease rejected (" << response.status
                      << "): " << response.body;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(resolved.poll_sec));
      continue;
    }
    const auto grant = ParseResponseRow(response.body);
    if (!grant) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(resolved.poll_sec));
      continue;
    }
    const std::string state = grant->Text("state");
    if (state == "drained") {
      summary.drained = true;
      break;
    }
    if (state != "lease") {  // "empty": work is running elsewhere, poll again
      std::this_thread::sleep_for(
          std::chrono::duration<double>(resolved.poll_sec));
      continue;
    }
    RunOneRemoteItem(*grant, resolved, &client, trace_cache.get(), &total_rows,
                     &summary);
  }
  summary.transport_failures = client.transport_failures();
  return summary;
}

}  // namespace mobisim
