#include "src/sweepd/worker.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/runner/cli_options.h"
#include "src/runner/result_sink.h"
#include "src/runner/sweep_runner.h"
#include "src/sweepd/merge.h"
#include "src/sweepd/spool.h"
#include "src/trace/trace_cache.h"
#include "src/util/atomic_file.h"
#include "src/util/heartbeat.h"

namespace mobisim {

namespace {

// One claimed item, end to end: resume, simulate, finalize.
void RunOneItem(const Spool& spool, const SpoolMeta& meta,
                const ExperimentSpec& spec, const WorkItem& item,
                const WorkerOptions& options, TraceCache* trace_cache,
                std::atomic<std::uint64_t>* total_rows, WorkerSummary* summary) {
  // Resolve the item to its concrete points (global indices throughout).
  std::vector<ExperimentPoint> points = EnumerateGrid(spec);
  points = item.points.empty() ? FilterShard(std::move(points), item.shard, item.shards)
                               : FilterPoints(std::move(points), item.points);

  // Resume: rows a dead predecessor already streamed are inherited, not
  // re-simulated.  Every attempt's part file is read (two part files can
  // coexist after a spurious requeue); exact duplicates merge away later.
  std::map<std::uint64_t, ResultRow> inherited;
  for (const std::string& part : spool.PartPaths(item.id)) {
    for (ResultRow& row : LoadPartialRows(part)) {
      const auto index = PointIndexOf(row);
      if (index) {
        inherited.emplace(*index, std::move(row));
      }
    }
  }
  if (!inherited.empty()) {
    std::vector<ExperimentPoint> remaining;
    for (ExperimentPoint& point : points) {
      if (inherited.find(point.index) == inherited.end()) {
        remaining.push_back(std::move(point));
      }
    }
    points = std::move(remaining);
    summary->resumed += inherited.size();
  }

  // Stream this attempt's rows to its own part file, flushed per row so a
  // kill loses at most the in-flight row.
  const std::string part_path = spool.PartPath(item.id, item.attempt);
  std::ofstream part(part_path, std::ios::app);
  JsonlResultSink part_sink(part);

  std::atomic<std::uint64_t> item_rows{0};
  HeartbeatThread heartbeat;
  heartbeat.Start(spool.HeartbeatPath(item.id), options.heartbeat_sec,
                  options.owner, [&item_rows] { return item_rows.load(); });

  SweepOptions sweep_options;
  sweep_options.threads = options.jobs;
  sweep_options.sinks = {&part_sink};
  sweep_options.trace_cache = trace_cache;
  sweep_options.on_emit = [&](const SweepOutcome& outcome) {
    (void)outcome;
    part.flush();
    item_rows.fetch_add(1);
    const std::uint64_t total = total_rows->fetch_add(1) + 1;
    if (options.throttle_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.throttle_ms));
    }
    if (options.kill_after_rows > 0 && total >= options.kill_after_rows) {
      // Injected death: no destructors, no finalization, lease left behind —
      // exactly what SIGKILL mid-shard looks like to the spool.
      std::_Exit(137);
    }
  };

  const std::vector<SweepOutcome> outcomes = RunSweep(points, sweep_options);
  heartbeat.Stop();

  // Finalize: inherited + fresh rows in global index order, published
  // atomically to done/ before the task file moves there.
  std::map<std::uint64_t, ResultRow> rows = std::move(inherited);
  for (const SweepOutcome& outcome : outcomes) {
    rows[outcome.point.index] = outcome.row;
  }
  std::size_t error_rows = 0;
  for (const auto& [index, row] : rows) {
    (void)index;
    if (IsErrorRow(row)) {
      ++error_rows;
    }
  }

  RunMeta run_meta;
  run_meta.spec_name = meta.name;
  run_meta.spec_hash = meta.spec_hash;
  run_meta.git_sha = DefaultGitSha();
  run_meta.created = NowUtc();
  run_meta.host = HostName();
  run_meta.points = rows.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(run_meta)) << "\n";
  for (const auto& [index, row] : rows) {
    (void)index;
    out << RowToJson(row) << "\n";
  }
  std::string error;
  if (!WriteFileAtomic(spool.RowsPath(item.id), out.str(), &error)) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << item.id << ": " << error << "\n";
    }
    return;  // leave the lease; the dispatcher will requeue after expiry
  }
  part.close();
  if (!spool.FinishItem(item, &error)) {
    // Lease lost to a requeue while we were finishing.  The rows file is in
    // place and deterministic, so the re-run converges to the same bytes.
    ++summary->lost_leases;
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << error << "\n";
    }
    return;
  }

  summary->rows += outcomes.size();
  summary->error_rows += error_rows;
  ResultRow event;
  event.AddText("event", error_rows > 0 ? "shard_poisoned" : "shard_done");
  event.AddText("item", item.id);
  event.AddInt("attempt", item.attempt);
  event.AddInt("rows", rows.size());
  event.AddInt("error_rows", error_rows);
  event.AddInt("owner", options.owner);
  spool.AppendEvent(std::move(event));
  if (options.log != nullptr) {
    *options.log << "sweepd-worker: " << item.id << " done (" << rows.size()
                 << " rows, " << error_rows << " errors)\n";
  }
}

}  // namespace

WorkerSummary RunWorkerLoop(const WorkerOptions& options) {
  WorkerSummary summary;
  Spool spool(options.spool_root);
  std::string error;
  const auto meta = spool.ReadMeta(&error);
  if (!meta) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: " << error << "\n";
    }
    return summary;
  }
  const auto spec = spool.LoadSpec(&error);
  if (!spec) {
    if (options.log != nullptr) {
      *options.log << "sweepd-worker: spec: " << error << "\n";
    }
    return summary;
  }
  WorkerOptions resolved = options;
  if (resolved.owner == 0) {
    resolved.owner = static_cast<std::uint64_t>(::getpid());
  }
  std::unique_ptr<TraceCache> trace_cache;
  if (!resolved.trace_cache_dir.empty()) {
    trace_cache = std::make_unique<TraceCache>(resolved.trace_cache_dir);
  }

  std::atomic<std::uint64_t> total_rows{0};
  while (true) {
    auto item = spool.Claim(resolved.owner, &error);
    if (!item) {
      if (!error.empty() && options.log != nullptr) {
        *options.log << "sweepd-worker: claim: " << error << "\n";
      }
      break;  // queue drained (or unreadable): this worker is finished
    }
    ++summary.items;
    RunOneItem(spool, *meta, *spec, *item, resolved, trace_cache.get(),
               &total_rows, &summary);
  }
  return summary;
}

}  // namespace mobisim
