#include "src/fs/fat_file_system.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace mobisim {

namespace {

// File id used for metadata traffic so device seek models treat FAT/dir
// traffic as its own locality domain.
constexpr std::uint32_t kMetadataFile = ~std::uint32_t{0} - 3;

}  // namespace

FatFileSystem::FatFileSystem(const FatConfig& config) : config_(config) {
  MOBISIM_CHECK(config.block_bytes >= 512);
  MOBISIM_CHECK(config.fat_copies >= 1);
  total_blocks_ = config.capacity_bytes / config.block_bytes;
  MOBISIM_CHECK(total_blocks_ > 64);

  // 16-bit FAT entries; one entry per data cluster.  Solve approximately:
  // the FAT must cover all clusters that fit after itself.
  const std::uint64_t entries_per_block = config.block_bytes / 2;
  std::uint64_t clusters = total_blocks_;  // upper bound, refined below
  fat_blocks_per_copy_ = (clusters + entries_per_block - 1) / entries_per_block;
  dir_blocks_ = (static_cast<std::uint64_t>(config.dir_entries) * config.dir_entry_bytes +
                 config.block_bytes - 1) /
                config.block_bytes;
  const std::uint64_t overhead = 1 + fat_blocks_per_copy_ * config.fat_copies + dir_blocks_;
  MOBISIM_CHECK(total_blocks_ > overhead);
  data_clusters_ = total_blocks_ - overhead;
  cluster_used_.assign(data_clusters_, false);
}

std::uint64_t FatFileSystem::free_clusters() const {
  std::uint64_t used = 0;
  for (const bool u : cluster_used_) {
    used += u ? 1 : 0;
  }
  return data_clusters_ - used;
}

std::vector<std::uint32_t> FatFileSystem::FileClusters(std::uint32_t file_id) const {
  const auto it = files_.find(file_id);
  if (it == files_.end()) {
    return {};
  }
  return it->second.clusters;
}

void FatFileSystem::EmitFatWrite(std::uint32_t cluster, SimTime t,
                                 std::vector<BlockRecord>* out) {
  const std::uint64_t entries_per_block = config_.block_bytes / 2;
  for (std::uint32_t copy = 0; copy < config_.fat_copies; ++copy) {
    const std::uint64_t lba =
        fat_begin() + copy * fat_blocks_per_copy_ + cluster / entries_per_block;
    // Dedupe within the current operation: one write per touched FAT block.
    if (std::find(pending_fat_blocks_.begin(), pending_fat_blocks_.end(), lba) !=
        pending_fat_blocks_.end()) {
      continue;
    }
    pending_fat_blocks_.push_back(lba);
    if (out != nullptr) {
      BlockRecord rec;
      rec.time_us = t;
      rec.op = OpType::kWrite;
      rec.lba = lba;
      rec.block_count = 1;
      rec.file_id = kMetadataFile;
      out->push_back(rec);
      ++stats_.fat_blocks_written;
    }
  }
}

void FatFileSystem::EmitDirWrite(const FileState& file, SimTime t,
                                 std::vector<BlockRecord>* out) {
  if (out == nullptr) {
    return;
  }
  const std::uint64_t lba =
      dir_begin() +
      static_cast<std::uint64_t>(file.dir_slot) * config_.dir_entry_bytes /
          config_.block_bytes;
  BlockRecord rec;
  rec.time_us = t;
  rec.op = OpType::kWrite;
  rec.lba = lba;
  rec.block_count = 1;
  rec.file_id = kMetadataFile;
  out->push_back(rec);
  ++stats_.dir_blocks_written;
}

bool FatFileSystem::AllocateClusters(FileState& file, std::uint64_t count, SimTime t,
                                     std::vector<BlockRecord>* out) {
  for (std::uint64_t n = 0; n < count; ++n) {
    // Next-fit scan from the rotating cursor.
    std::uint32_t chosen = ~std::uint32_t{0};
    for (std::uint64_t probe = 0; probe < data_clusters_; ++probe) {
      const std::uint32_t candidate = static_cast<std::uint32_t>(
          (next_fit_cursor_ + probe) % data_clusters_);
      if (!cluster_used_[candidate]) {
        chosen = candidate;
        break;
      }
    }
    if (chosen == ~std::uint32_t{0}) {
      return false;  // volume full
    }
    cluster_used_[chosen] = true;
    next_fit_cursor_ = static_cast<std::uint32_t>((chosen + 1) % data_clusters_);
    // Chain update: the predecessor's FAT entry now points here, and this
    // cluster's entry becomes end-of-chain.
    if (!file.clusters.empty()) {
      EmitFatWrite(file.clusters.back(), t, out);
    }
    EmitFatWrite(chosen, t, out);
    file.clusters.push_back(chosen);
    ++stats_.allocations;
  }
  return true;
}

void FatFileSystem::FreeClusters(FileState& file, SimTime t, std::vector<BlockRecord>* out) {
  for (const std::uint32_t cluster : file.clusters) {
    cluster_used_[cluster] = false;
    EmitFatWrite(cluster, t, out);
  }
  file.clusters.clear();
}

FatFileSystem::FileState& FatFileSystem::GetOrCreateFile(std::uint32_t file_id,
                                                         bool created_by_write,
                                                         std::uint64_t initial_bytes,
                                                         SimTime t,
                                                         std::vector<BlockRecord>* out) {
  const auto it = files_.find(file_id);
  if (it != files_.end()) {
    return it->second;
  }
  FileState state;
  state.dir_slot = next_dir_slot_++ % config_.dir_entries;
  auto& entry = files_.emplace(file_id, state).first->second;
  const std::uint64_t blocks =
      (std::max<std::uint64_t>(initial_bytes, 1) + config_.block_bytes - 1) /
      config_.block_bytes;
  if (created_by_write) {
    // New file: allocation traffic is visible.
    ++stats_.files_created;
    pending_fat_blocks_.clear();
    MOBISIM_CHECK(AllocateClusters(entry, blocks, t, out) && "FAT volume full");
    EmitDirWrite(entry, t, out);
  } else {
    // Pre-existing file (trace starts mid-life): allocate silently.
    MOBISIM_CHECK(AllocateClusters(entry, blocks, t, nullptr) && "FAT volume full");
  }
  return entry;
}

BlockTrace FatFileSystem::Lower(const Trace& trace) {
  MOBISIM_CHECK(trace.block_bytes == config_.block_bytes);

  // Pass 1: maximum size each file reaches (for pre-existing allocation).
  std::unordered_map<std::uint32_t, std::uint64_t> max_bytes;
  for (const TraceRecord& rec : trace.records) {
    if (rec.op != OpType::kErase) {
      std::uint64_t& entry = max_bytes[rec.file_id];
      entry = std::max(entry, rec.offset + rec.size_bytes);
    }
  }

  BlockTrace out;
  out.name = trace.name + "+fat";
  out.block_bytes = config_.block_bytes;
  out.total_blocks = total_blocks_;
  out.records.reserve(trace.records.size() * 2);

  for (const TraceRecord& rec : trace.records) {
    pending_fat_blocks_.clear();
    if (rec.op == OpType::kErase) {
      const auto it = files_.find(rec.file_id);
      if (it != files_.end()) {
        FreeClusters(it->second, rec.time_us, &out.records);
        EmitDirWrite(it->second, rec.time_us, &out.records);
        files_.erase(it);
        ++stats_.files_deleted;
      }
      continue;
    }

    FileState& file = GetOrCreateFile(rec.file_id, rec.op == OpType::kWrite,
                                      max_bytes[rec.file_id], rec.time_us, &out.records);
    // Grow the chain if this access reaches beyond it (recreation after a
    // delete, or growth past the silent preallocation).
    const std::uint64_t needed_blocks =
        (rec.offset + std::max<std::uint64_t>(rec.size_bytes, 1) + config_.block_bytes - 1) /
        config_.block_bytes;
    if (needed_blocks > file.clusters.size()) {
      MOBISIM_CHECK(AllocateClusters(file, needed_blocks - file.clusters.size(), rec.time_us,
                                     &out.records) &&
                    "FAT volume full");
    }

    // Data traffic: one block-level record per contiguous cluster run.
    const std::uint64_t first = rec.offset / config_.block_bytes;
    const std::uint64_t last =
        (rec.offset + std::max<std::uint64_t>(rec.size_bytes, 1) - 1) / config_.block_bytes;
    std::uint64_t run_start = first;
    for (std::uint64_t b = first; b <= last; ++b) {
      const bool contiguous =
          b + 1 <= last && file.clusters[b + 1] == file.clusters[b] + 1;
      if (!contiguous) {
        BlockRecord data;
        data.time_us = rec.time_us;
        data.op = rec.op;
        data.lba = data_begin() + file.clusters[run_start];
        data.block_count = static_cast<std::uint32_t>(b - run_start + 1);
        data.file_id = rec.file_id;
        out.records.push_back(data);
        if (rec.op == OpType::kRead) {
          stats_.data_blocks_read += data.block_count;
        } else {
          stats_.data_blocks_written += data.block_count;
        }
        run_start = b + 1;
      }
    }

    if (rec.op == OpType::kWrite && config_.dir_update_per_write) {
      EmitDirWrite(file, rec.time_us, &out.records);
    }
  }

  // Fragmentation statistic.
  RunningStats extents;
  for (const auto& [id, file] : files_) {
    if (file.clusters.empty()) {
      continue;
    }
    std::uint64_t runs = 1;
    for (std::size_t i = 1; i < file.clusters.size(); ++i) {
      runs += file.clusters[i] == file.clusters[i - 1] + 1 ? 0 : 1;
    }
    extents.Add(static_cast<double>(runs));
  }
  stats_.mean_extents_per_file = extents.mean();
  return out;
}

}  // namespace mobisim
