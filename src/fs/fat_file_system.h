// FAT-style file-system model: lowers file-level traces to block-level
// traffic *including metadata*.
//
// The paper notes (section 4.1) that its file-level traces lack the metadata
// operations the disk-level hp trace contains, and its simulator maps each
// file to a unique disk location with no file-system overhead.  This module
// provides the missing substrate: a DOS-era FAT layout with
//   - a reserved boot block,
//   - `fat_copies` file-allocation tables of 16-bit entries (DOS writes all
//     copies on every allocation change),
//   - a directory region of 32-byte entries (updated when a file's size or
//     timestamp changes), and
//   - a data region of clusters allocated next-fit, so files written after
//     deletions fragment.
//
// Lowering a trace through it yields the extra metadata writes that hammer
// the (fixed, very hot) FAT blocks -- the access pattern that burns out
// flash under a conventional file system and motivated log-structured flash
// file systems like MFFS (sections 2 and 6).
#ifndef MOBISIM_SRC_FS_FAT_FILE_SYSTEM_H_
#define MOBISIM_SRC_FS_FAT_FILE_SYSTEM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/trace_record.h"

namespace mobisim {

struct FatConfig {
  std::uint64_t capacity_bytes = 40ull * 1024 * 1024;
  // Cluster size; also the unit of the emitted block trace.
  std::uint32_t block_bytes = 1024;
  std::uint32_t fat_copies = 2;
  std::uint32_t dir_entry_bytes = 32;
  // Root-directory capacity in entries (DOS default 512).
  std::uint32_t dir_entries = 512;
  // Update the file's directory entry on every write (size/mtime), as DOS
  // does when applications write through the file handle.
  bool dir_update_per_write = true;
};

struct FatStats {
  std::uint64_t data_blocks_read = 0;
  std::uint64_t data_blocks_written = 0;
  std::uint64_t fat_blocks_written = 0;
  std::uint64_t dir_blocks_written = 0;
  std::uint64_t files_created = 0;
  std::uint64_t files_deleted = 0;
  std::uint64_t allocations = 0;
  // Fragmentation: 1.0 means every file is one contiguous extent.
  double mean_extents_per_file = 0.0;

  std::uint64_t metadata_blocks_written() const {
    return fat_blocks_written + dir_blocks_written;
  }
};

class FatFileSystem {
 public:
  explicit FatFileSystem(const FatConfig& config);

  // Lowers `trace` to block-level traffic, including metadata writes.
  // Files first seen via a read are treated as pre-existing (their clusters
  // are allocated silently at mount); files first seen via a write are
  // created, with allocation traffic.
  BlockTrace Lower(const Trace& trace);

  const FatStats& stats() const { return stats_; }

  // Layout introspection (block addresses).
  std::uint64_t fat_begin() const { return 1; }
  std::uint64_t fat_blocks() const { return fat_blocks_per_copy_ * config_.fat_copies; }
  std::uint64_t dir_begin() const { return fat_begin() + fat_blocks(); }
  std::uint64_t dir_blocks() const { return dir_blocks_; }
  std::uint64_t data_begin() const { return dir_begin() + dir_blocks_; }
  std::uint64_t total_blocks() const { return total_blocks_; }
  std::uint64_t free_clusters() const;

  // Exposed for tests: the cluster chain of a file (empty if unknown).
  std::vector<std::uint32_t> FileClusters(std::uint32_t file_id) const;

 private:
  struct FileState {
    std::uint32_t dir_slot = 0;
    std::vector<std::uint32_t> clusters;
  };

  // Allocates `count` clusters next-fit; emits FAT writes into `out`.
  // Returns false if the volume is full.
  bool AllocateClusters(FileState& file, std::uint64_t count, SimTime t,
                        std::vector<BlockRecord>* out);
  void FreeClusters(FileState& file, SimTime t, std::vector<BlockRecord>* out);
  void EmitFatWrite(std::uint32_t cluster, SimTime t, std::vector<BlockRecord>* out);
  void EmitDirWrite(const FileState& file, SimTime t, std::vector<BlockRecord>* out);
  FileState& GetOrCreateFile(std::uint32_t file_id, bool created_by_write,
                             std::uint64_t initial_bytes, SimTime t,
                             std::vector<BlockRecord>* out);

  FatConfig config_;
  std::uint64_t total_blocks_;
  std::uint64_t fat_blocks_per_copy_;
  std::uint64_t dir_blocks_;
  std::uint64_t data_clusters_;
  std::vector<bool> cluster_used_;
  std::uint32_t next_fit_cursor_ = 0;
  std::uint32_t next_dir_slot_ = 0;
  std::unordered_map<std::uint32_t, FileState> files_;
  FatStats stats_;
  // Dedupe FAT-block writes within one operation.
  std::vector<std::uint64_t> pending_fat_blocks_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_FS_FAT_FILE_SYSTEM_H_
