#include "src/util/rng.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mobisim {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Rng::NextU32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t Rng::NextU64() {
  return (static_cast<std::uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  MOBISIM_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  MOBISIM_DCHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t value = NextU64();
  while (value >= limit) {
    value = NextU64();
  }
  return lo + static_cast<std::int64_t>(value % range);
}

double Rng::Exponential(double mean) {
  MOBISIM_DCHECK(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::Chance(double probability) { return NextDouble() < probability; }

Rng Rng::Fork() { return Rng(NextU64(), NextU64() >> 1); }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  MOBISIM_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  MOBISIM_CHECK(!weights.empty());
  cdf_ = std::move(weights);
  double total = 0.0;
  for (double& w : cdf_) {
    MOBISIM_CHECK(w >= 0.0);
    total += w;
    w = total;
  }
  MOBISIM_CHECK(total > 0.0);
  for (double& w : cdf_) {
    w /= total;
  }
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace mobisim
