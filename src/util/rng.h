// Deterministic random number generation for workload synthesis.
//
// mobisim uses a self-contained PCG32 generator rather than <random> engines
// so that traces are bit-identical across standard library implementations.
// All distributions used by the workload generators live here too.
#ifndef MOBISIM_SRC_UTIL_RNG_H_
#define MOBISIM_SRC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace mobisim {

// PCG32 (Melissa O'Neill's pcg32_random_r), a small fast statistically-good
// generator with a 64-bit state and 64-bit stream selector.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Uniform 32-bit value.
  std::uint32_t NextU32();
  // Uniform 64-bit value.
  std::uint64_t NextU64();
  // Uniform double in [0, 1).
  double NextDouble();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);
  // Exponential with the given mean (> 0).
  double Exponential(double mean);
  // Standard normal via Box-Muller (no cached spare: stays stateless).
  double Normal(double mean, double stddev);
  // Log-normal parameterized directly by the *target* mean and sigma of the
  // underlying normal; convenience for heavy-tailed inter-arrival times.
  double LogNormal(double mu, double sigma);
  // Bernoulli trial.
  bool Chance(double probability);

  // Creates an independent generator derived from this one (for giving each
  // workload component its own stream without coupling draw orders).
  Rng Fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

// Zipf(s) sampler over {0, ..., n-1} using a precomputed CDF and binary
// search.  s = 0 degenerates to uniform; larger s skews toward low ranks.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Weighted discrete choice over a fixed set of weights.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_RNG_H_
