// Simulation time base for mobisim.
//
// All simulation timestamps and durations are integral microseconds.  The
// simulator is entirely discrete: there is no wall clock anywhere in the
// core, which keeps runs deterministic and replayable.
#ifndef MOBISIM_SRC_UTIL_SIM_TIME_H_
#define MOBISIM_SRC_UTIL_SIM_TIME_H_

#include <cstdint>

namespace mobisim {

// Microseconds since the start of a simulation (or a duration in us).
using SimTime = std::int64_t;

constexpr SimTime kUsPerMs = 1000;
constexpr SimTime kUsPerSec = 1000 * 1000;

constexpr SimTime UsFromMs(double ms) { return static_cast<SimTime>(ms * kUsPerMs); }
constexpr SimTime UsFromSec(double sec) { return static_cast<SimTime>(sec * kUsPerSec); }

constexpr double MsFromUs(SimTime us) { return static_cast<double>(us) / kUsPerMs; }
constexpr double SecFromUs(SimTime us) { return static_cast<double>(us) / kUsPerSec; }

// Time to move `bytes` at `kbytes_per_sec` (1 Kbyte = 1024 bytes, matching the
// device datasheets the paper quotes).  Returns 0 for zero-byte transfers and
// saturates rather than dividing by a zero bandwidth.
constexpr SimTime TransferTimeUs(std::uint64_t bytes, double kbytes_per_sec) {
  if (bytes == 0) {
    return 0;
  }
  if (kbytes_per_sec <= 0.0) {
    return 0;
  }
  const double seconds = static_cast<double>(bytes) / (kbytes_per_sec * 1024.0);
  return static_cast<SimTime>(seconds * kUsPerSec);
}

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_SIM_TIME_H_
