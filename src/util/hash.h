// Small non-cryptographic hashing helpers.
//
// Fnv1a64 is the 64-bit FNV-1a hash: stable across platforms and runs (unlike
// std::hash, which the standard leaves unspecified), so it is safe to persist
// — spec fingerprints written into result files by one build must compare
// equal when recomputed by another.
#ifndef MOBISIM_SRC_UTIL_HASH_H_
#define MOBISIM_SRC_UTIL_HASH_H_

#include <cstdint>
#include <string>

namespace mobisim {

constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

constexpr std::uint64_t Fnv1a64(const char* data, std::size_t size,
                                std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnv1a64Prime;
  }
  return hash;
}

inline std::uint64_t Fnv1a64(const std::string& s,
                             std::uint64_t seed = kFnv1a64Offset) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// Little-endian 64-bit load, written byte-wise so the hash value is defined
// by file bytes, not host endianness (compilers lower this to a single load
// on little-endian targets).
inline std::uint64_t LoadLeU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

// Wide FNV-1a: eight independent FNV lanes over interleaved little-endian
// 64-bit words, combined with a scalar pass over the lane values, the tail
// bytes, and the total length.  Same stability guarantees as Fnv1a64 (the
// value is a pure function of the bytes) at ~8 bytes per multiply instead of
// one, which is what lets the trace cache verify a multi-megabyte mapped
// entry's footer without erasing the zero-copy win.  NOT interchangeable
// with Fnv1a64 — callers pick one per format and stick with it.
inline std::uint64_t Fnv1a64Wide(const char* data, std::size_t size) {
  constexpr int kLanes = 8;
  std::uint64_t lane[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    lane[l] = kFnv1a64Offset + static_cast<std::uint64_t>(l);
  }
  const std::size_t stripes = size / (8 * kLanes);
  const char* p = data;
  for (std::size_t s = 0; s < stripes; ++s) {
    for (int l = 0; l < kLanes; ++l) {
      lane[l] = (lane[l] ^ LoadLeU64(p + 8 * l)) * kFnv1a64Prime;
    }
    p += 8 * kLanes;
  }
  std::uint64_t hash = kFnv1a64Offset;
  for (int l = 0; l < kLanes; ++l) {
    hash = (hash ^ lane[l]) * kFnv1a64Prime;
  }
  hash = Fnv1a64(p, size - stripes * 8 * kLanes, hash);
  hash ^= size;
  hash *= kFnv1a64Prime;
  return hash;
}

// 16 lowercase hex digits, zero-padded; the canonical rendering of a
// fingerprint in manifests and JSONL metadata headers.
inline std::string HexU64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HASH_H_
