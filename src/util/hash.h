// Small non-cryptographic hashing helpers.
//
// Fnv1a64 is the 64-bit FNV-1a hash: stable across platforms and runs (unlike
// std::hash, which the standard leaves unspecified), so it is safe to persist
// — spec fingerprints written into result files by one build must compare
// equal when recomputed by another.
#ifndef MOBISIM_SRC_UTIL_HASH_H_
#define MOBISIM_SRC_UTIL_HASH_H_

#include <cstdint>
#include <string>

namespace mobisim {

constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

constexpr std::uint64_t Fnv1a64(const char* data, std::size_t size,
                                std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnv1a64Prime;
  }
  return hash;
}

inline std::uint64_t Fnv1a64(const std::string& s,
                             std::uint64_t seed = kFnv1a64Offset) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// 16 lowercase hex digits, zero-padded; the canonical rendering of a
// fingerprint in manifests and JSONL metadata headers.
inline std::string HexU64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HASH_H_
