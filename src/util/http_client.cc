#include "src/util/http_client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/parse.h"

namespace mobisim {

namespace {

// Distinct PCG32 streams so the drop, delay, and duplicate schedules are
// independent (enabling delays must not move the next drop), mirroring
// fault_streams in src/fault.
constexpr std::uint64_t kDropStream = 0xa0761d6478bd642fULL;
constexpr std::uint64_t kDelayStream = 0xe7037ed1a0b428dbULL;
constexpr std::uint64_t kDupStream = 0x8ebc6af09c88c6e3ULL;
constexpr std::uint64_t kJitterStream = 0x589965cc75374cc3ULL;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Applies a timeout to subsequent blocking reads/writes on `fd`.
void SetSocketTimeout(int fd, double seconds) {
  seconds = std::max(seconds, 0.01);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Bounded TCP connect: non-blocking connect + poll, then back to blocking.
// Returns the connected fd, or -1 with `error` set.
int ConnectWithTimeout(const std::string& host, std::uint16_t port,
                       double timeout_sec, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    SetError(error, "resolve " + host + ": " + ::gai_strerror(rc));
    return -1;
  }

  int fd = -1;
  std::string last_error = "no usable address";
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::fcntl(fd, F_SETFL, flags);
      break;
    }
    if (errno != EINPROGRESS) {
      last_error = std::string("connect: ") + std::strerror(errno);
      ::close(fd);
      fd = -1;
      continue;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms = std::max(1, static_cast<int>(timeout_sec * 1000.0));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      last_error = ready == 0 ? "connect timed out"
                              : std::string("poll: ") + std::strerror(errno);
      ::close(fd);
      fd = -1;
      continue;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      last_error = std::string("connect: ") +
                   std::strerror(so_error != 0 ? so_error : errno);
      ::close(fd);
      fd = -1;
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);
    break;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    SetError(error, host + ":" + service + ": " + last_error);
  }
  return fd;
}

bool SendAll(int fd, const std::string& data, std::string* error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      SetError(error, std::string("send: ") +
                          (n == 0 ? "connection closed" : std::strerror(errno)));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<NetFaultConfig> ParseNetFaultSpec(const std::string& text,
                                                std::string* error) {
  NetFaultConfig config;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string token = text.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) {
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      SetError(error, "net-fault token '" + token + "' is not key=value");
      return std::nullopt;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "seed") {
      const auto parsed = ParseUint64(value);
      if (!parsed) {
        SetError(error, "net-fault seed '" + value + "' is not an integer");
        return std::nullopt;
      }
      config.seed = *parsed;
      continue;
    }
    const auto parsed = ParseFiniteDouble(value);
    if (!parsed || *parsed < 0.0) {
      SetError(error, "net-fault " + key + " '" + value +
                          "' is not a non-negative number");
      return std::nullopt;
    }
    if (key == "drop" || key == "dup" || key == "delay") {
      if (*parsed > 1.0) {
        SetError(error, "net-fault " + key + " must be a rate in [0, 1]");
        return std::nullopt;
      }
    }
    if (key == "drop") {
      config.drop_rate = *parsed;
    } else if (key == "dup") {
      config.dup_rate = *parsed;
    } else if (key == "delay") {
      config.delay_rate = *parsed;
    } else if (key == "delay-ms" || key == "delay_ms") {
      config.delay_ms = *parsed;
    } else {
      SetError(error, "unknown net-fault key '" + key +
                          "' (want seed, drop, dup, delay, delay-ms)");
      return std::nullopt;
    }
  }
  return config;
}

NetFaultInjector::NetFaultInjector(const NetFaultConfig& config)
    : config_(config),
      drop_rng_(config.seed, kDropStream),
      delay_rng_(config.seed, kDelayStream),
      dup_rng_(config.seed, kDupStream) {}

bool NetFaultInjector::DrawDrop() {
  if (config_.drop_rate <= 0.0) {
    return false;
  }
  const bool drop = drop_rng_.Chance(config_.drop_rate);
  if (drop) {
    ++counts_.dropped;
  }
  return drop;
}

double NetFaultInjector::DrawDelayMs() {
  if (config_.delay_rate <= 0.0 || config_.delay_ms <= 0.0) {
    return 0.0;
  }
  if (!delay_rng_.Chance(config_.delay_rate)) {
    return 0.0;
  }
  ++counts_.delayed;
  return config_.delay_ms;
}

bool NetFaultInjector::DrawDuplicate() {
  if (config_.dup_rate <= 0.0) {
    return false;
  }
  const bool dup = dup_rng_.Chance(config_.dup_rate);
  if (dup) {
    ++counts_.duplicated;
  }
  return dup;
}

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       HttpClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      jitter_rng_(options.jitter_seed, kJitterStream) {}

bool HttpClient::Fetch(const std::string& method, const std::string& path,
                       const std::string& body, HttpResponse* response,
                       std::string* error) {
  const double deadline = NowSec() + options_.io_timeout_sec;
  const int fd =
      ConnectWithTimeout(host_, port_, options_.connect_timeout_sec, error);
  if (fd < 0) {
    return false;
  }
  SetSocketTimeout(fd, options_.io_timeout_sec);

  std::ostringstream request;
  request << method << " " << path << " HTTP/1.0\r\n";
  if (method == "POST" || !body.empty()) {
    request << "Content-Length: " << body.size() << "\r\n";
  }
  request << "Connection: close\r\n\r\n" << body;
  if (!SendAll(fd, request.str(), error)) {
    ::close(fd);
    return false;
  }

  // HTTP/1.0 with Connection: close — read to EOF, bounded by the overall
  // deadline (the per-syscall timeout alone would let a drip-feeding server
  // stretch one response forever).
  std::string raw;
  char buf[4096];
  while (true) {
    if (NowSec() > deadline) {
      SetError(error, "response timed out");
      ::close(fd);
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, std::string("recv: ") + std::strerror(errno));
      ::close(fd);
      return false;
    }
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    SetError(error, "malformed HTTP response");
    return false;
  }
  const std::size_t space = raw.find(' ');
  int status = 0;
  if (space != std::string::npos && space < header_end) {
    status = std::atoi(raw.c_str() + space + 1);
  }
  if (status < 100 || status > 999) {
    SetError(error, "malformed HTTP status line");
    return false;
  }
  if (response != nullptr) {
    response->status = status;
    response->body = raw.substr(header_end + 4);
  }
  return true;
}

bool HttpClient::FetchWithRetry(const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                HttpResponse* response, std::string* error) {
  std::string attempt_error;
  for (std::size_t attempt = 0;; ++attempt) {
    bool ok = false;
    if (injector_ != nullptr) {
      injector_->CountRequest();
      if (injector_->DrawDrop()) {
        attempt_error = "injected request drop";
      } else {
        const double delay_ms = injector_->DrawDelayMs();
        if (delay_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
        }
        ok = Fetch(method, path, body, response, &attempt_error);
        if (ok && injector_->DrawDuplicate()) {
          // Replay the identical request; the duplicate's response (and any
          // failure) is discarded.  This is what a retransmitted or doubly
          // delivered request looks like to the server, and the reason the
          // lease upload path must be idempotent.
          HttpResponse discard;
          std::string discard_error;
          Fetch(method, path, body, &discard, &discard_error);
        }
      }
    } else {
      ok = Fetch(method, path, body, response, &attempt_error);
    }
    if (ok) {
      return true;
    }
    ++transport_failures_;
    if (attempt >= options_.max_retries) {
      SetError(error, attempt_error + " (after " + std::to_string(attempt + 1) +
                          " attempts)");
      return false;
    }
    double backoff = options_.backoff_base_sec;
    for (std::size_t i = 0; i < attempt && backoff < options_.backoff_max_sec; ++i) {
      backoff *= 2.0;
    }
    backoff = std::min(backoff, options_.backoff_max_sec);
    backoff *= jitter_rng_.Uniform(1.0, 2.0);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

}  // namespace mobisim
