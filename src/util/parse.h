// Strict, total-input numeric parsing.
//
// std::stod / std::stoull are hostile primitives for config parsing: they
// throw on overflow, accept partial prefixes, silently wrap negative input
// into huge unsigned values ("-1" -> 2^64-1), and happily return nan/inf.
// Every config and flag parser in mobisim goes through these helpers
// instead, so a malformed value like `1e999`, `nan`, or `-1` becomes a
// clean std::nullopt for the caller's own error message — never an
// uncaught exception, a NaN poisoning a simulation, or a silent wrap.
#ifndef MOBISIM_SRC_UTIL_PARSE_H_
#define MOBISIM_SRC_UTIL_PARSE_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>

namespace mobisim {

// Parses a finite double from the entire string.  Rejects empty input,
// leading whitespace, trailing garbage, nan, and +/-inf (including values
// like 1e999 that overflow to inf).
inline std::optional<double> ParseFiniteDouble(const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])) != 0) {
    return std::nullopt;
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !std::isfinite(value)) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {  // invalid_argument or out_of_range
    return std::nullopt;
  }
}

// Parses a decimal std::uint64_t from the entire string: digits only — no
// sign (so "-1" cannot wrap), no whitespace, no base prefix — with explicit
// overflow detection.
inline std::optional<std::uint64_t> ParseUint64(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

// Round-trip-exact double rendering (%.17g), the canonical form used in
// fingerprinted text: insensitive to how a value was originally spelled but
// sensitive to any actual change.
inline std::string CanonicalDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_PARSE_H_
