#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace mobisim {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MOBISIM_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MOBISIM_CHECK(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter& TablePrinter::BeginRow() {
  if (row_open_) {
    AddRow(std::move(pending_));
    pending_.clear();
  }
  row_open_ = true;
  return *this;
}

TablePrinter& TablePrinter::Cell(const std::string& value) {
  MOBISIM_CHECK(row_open_);
  pending_.push_back(value);
  return *this;
}

TablePrinter& TablePrinter::Cell(double value, int precision) {
  return Cell(Format(value, precision));
}

TablePrinter& TablePrinter::Cell(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return Cell(std::string(buf));
}

std::string TablePrinter::Format(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

void TablePrinter::Print(std::ostream& out) const {
  // Flush a pending row built via BeginRow()/Cell().
  TablePrinter copy = *this;
  if (copy.row_open_ && !copy.pending_.empty()) {
    copy.AddRow(std::move(copy.pending_));
  }

  std::vector<std::size_t> widths(copy.headers_.size());
  for (std::size_t i = 0; i < copy.headers_.size(); ++i) {
    widths[i] = copy.headers_[i].size();
  }
  for (const auto& row : copy.rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };

  print_row(copy.headers_);
  out << "|";
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : copy.rows_) {
    print_row(row);
  }
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  TablePrinter copy = *this;
  if (copy.row_open_ && !copy.pending_.empty()) {
    copy.AddRow(std::move(copy.pending_));
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        out << ",";
      }
      out << row[i];
    }
    out << "\n";
  };
  print_row(copy.headers_);
  for (const auto& row : copy.rows_) {
    print_row(row);
  }
}

}  // namespace mobisim
