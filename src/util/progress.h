// Thread-safe progress reporting for long sweeps.
//
// Renders a single self-overwriting line ("label  12/96 (12%)  elapsed 3.2s")
// to the given stream, rate-limited so that thousands of fast jobs do not
// drown the terminal.  A null stream disables output entirely, which keeps
// call sites branch-free.
#ifndef MOBISIM_SRC_UTIL_PROGRESS_H_
#define MOBISIM_SRC_UTIL_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace mobisim {

class ProgressMeter {
 public:
  // `out` may be null (meter disabled).  `total` of 0 renders counts only.
  ProgressMeter(std::string label, std::uint64_t total, std::ostream* out);
  // Finishes the line if Finish() was not called explicitly.
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // Records `delta` completed units; repaints at most ~10x per second.
  void Advance(std::uint64_t delta = 1);
  // Paints the final state and a newline.  Idempotent.
  void Finish();

  std::uint64_t done() const;

 private:
  void Render(bool final_line);

  const std::string label_;
  const std::uint64_t total_;
  std::ostream* const out_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::uint64_t done_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point last_render_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_PROGRESS_H_
