#include "src/util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <atomic>

#include <fcntl.h>
#include <unistd.h>

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& what, const std::string& path) {
  if (error != nullptr) {
    *error = what + " " + path + ": " + std::strerror(errno);
  }
}

// Unique temp name per writer so concurrent stores to one path never share
// a temp file: pid distinguishes processes, the counter threads.
std::string TempName(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

}  // namespace

bool WriteFileAtomic(const std::string& path, const std::string& data,
                     std::string* error) {
  const std::string tmp = TempName(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "cannot create", tmp);
    return false;
  }

  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, "write failed for", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }

  // fsync before rename: otherwise the rename can be durable while the data
  // is not, which is exactly the torn state this helper exists to prevent.
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    SetError(error, "fsync/close failed for", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "cannot rename into", path);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadFileToString(const std::string& path, std::string* data, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) {
      *error = "read failed for " + path;
    }
    return false;
  }
  *data = buffer.str();
  return true;
}

}  // namespace mobisim
