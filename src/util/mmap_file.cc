#include "src/util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

bool MmapFile::Open(const std::string& path, std::string* error) {
  Reset();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "open " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    SetError(error, "fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    mapped_ = true;  // an empty file is a valid (empty) mapping
    return true;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive without the fd
  if (addr == MAP_FAILED) {
    SetError(error, "mmap " + path + ": " + std::strerror(errno));
    return false;
  }
  data_ = addr;
  size_ = size;
  mapped_ = true;
  return true;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

}  // namespace mobisim
