#include "src/util/progress.h"

#include <cstdio>

namespace mobisim {

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total, std::ostream* out)
    : label_(std::move(label)),
      total_(total),
      out_(out),
      start_(std::chrono::steady_clock::now()),
      last_render_(start_ - std::chrono::hours(1)) {}

ProgressMeter::~ProgressMeter() { Finish(); }

void ProgressMeter::Advance(std::uint64_t delta) {
  if (out_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    done_ += delta;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  done_ += delta;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_render_ < std::chrono::milliseconds(100) && done_ != total_) {
    return;
  }
  last_render_ = now;
  Render(/*final_line=*/false);
}

void ProgressMeter::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) {
    return;
  }
  finished_ = true;
  if (out_ != nullptr) {
    Render(/*final_line=*/true);
  }
}

std::uint64_t ProgressMeter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ProgressMeter::Render(bool final_line) {
  const double elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  char buf[160];
  if (total_ > 0) {
    const double pct = 100.0 * static_cast<double>(done_) / static_cast<double>(total_);
    std::snprintf(buf, sizeof(buf), "\r%s  %llu/%llu (%3.0f%%)  elapsed %.1fs ",
                  label_.c_str(), static_cast<unsigned long long>(done_),
                  static_cast<unsigned long long>(total_), pct, elapsed_sec);
  } else {
    std::snprintf(buf, sizeof(buf), "\r%s  %llu  elapsed %.1fs ", label_.c_str(),
                  static_cast<unsigned long long>(done_), elapsed_sec);
  }
  (*out_) << buf;
  if (final_line) {
    (*out_) << "\n";
  }
  out_->flush();
}

}  // namespace mobisim
