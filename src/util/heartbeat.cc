#include "src/util/heartbeat.h"

#include <chrono>
#include <sstream>

#include <sys/stat.h>
#include <time.h>

#include "src/util/atomic_file.h"
#include "src/util/parse.h"

namespace mobisim {

bool WriteHeartbeat(const std::string& path, const HeartbeatRecord& record,
                    std::string* error) {
  std::ostringstream body;
  body << record.counter << " " << record.owner << "\n";
  return WriteFileAtomic(path, body.str(), error);
}

std::optional<HeartbeatRecord> ReadHeartbeat(const std::string& path) {
  std::string data;
  if (!ReadFileToString(path, &data)) {
    return std::nullopt;
  }
  std::istringstream in(data);
  std::string counter_text;
  std::string owner_text;
  if (!(in >> counter_text >> owner_text)) {
    return std::nullopt;
  }
  const auto counter = ParseUint64(counter_text);
  const auto owner = ParseUint64(owner_text);
  if (!counter || !owner) {
    return std::nullopt;
  }
  return HeartbeatRecord{*counter, *owner};
}

std::optional<double> SecondsSinceModified(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return std::nullopt;
  }
  timespec now{};
  clock_gettime(CLOCK_REALTIME, &now);
  const double modified = static_cast<double>(st.st_mtim.tv_sec) +
                          static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  const double current = static_cast<double>(now.tv_sec) +
                         static_cast<double>(now.tv_nsec) * 1e-9;
  // A file touched "in the future" (clock skew on a shared filesystem) reads
  // as freshly modified rather than as negative staleness.
  return current > modified ? current - modified : 0.0;
}

void HeartbeatThread::Start(std::string path, double interval_sec,
                            std::uint64_t owner,
                            std::function<std::uint64_t()> counter_fn) {
  Stop();
  path_ = std::move(path);
  owner_ = owner;
  counter_fn_ = std::move(counter_fn);
  stopping_ = false;
  WriteHeartbeat(path_, {counter_fn_ ? counter_fn_() : 0, owner_});
  const auto interval = std::chrono::duration<double>(interval_sec);
  thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      if (wake_.wait_for(lock, interval, [this] { return stopping_; })) {
        break;
      }
      lock.unlock();
      WriteHeartbeat(path_, {counter_fn_ ? counter_fn_() : 0, owner_});
      lock.lock();
    }
  });
}

void HeartbeatThread::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
  WriteHeartbeat(path_, {counter_fn_ ? counter_fn_() : 0, owner_});
}

}  // namespace mobisim
