// Read-only memory-mapped file (RAII).
//
// Backs the trace cache's zero-copy read path: a cached `.mtc` entry is
// mapped once and the simulator walks the record columns in place, so a warm
// sweep never copies trace payloads through userspace buffers.  The pattern
// follows the anti-caching mmap-pool exemplar in SNIPPETS.md — hand segments
// out of a mapping instead of materializing them.
//
// POSIX semantics this code relies on (and tests pin): the mapping stays
// valid after the file descriptor is closed, and after the file is unlinked
// — a gc eviction cannot invalidate a live view, the pages are released when
// the last mapping goes away.
#ifndef MOBISIM_SRC_UTIL_MMAP_FILE_H_
#define MOBISIM_SRC_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

namespace mobisim {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  // Maps `path` read-only (PROT_READ, MAP_PRIVATE) and closes the fd.  On
  // failure returns false, describes why in `error` (when non-null), and
  // leaves the object unmapped.  An empty file maps successfully with
  // size() == 0 and data() == nullptr (mmap of length 0 is invalid).
  bool Open(const std::string& path, std::string* error = nullptr);

  void Reset();

  bool valid() const { return data_ != nullptr || (mapped_ && size_ == 0); }
  const char* data() const { return static_cast<const char*>(data_); }
  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_MMAP_FILE_H_
