// Crash-safe whole-file writes.
//
// WriteFileAtomic publishes a file's full contents with the classic
// temp-file + fsync + rename protocol: readers either see the old bytes or
// the complete new bytes, never a truncated mix — a crash, a full disk, or
// a concurrent writer to the same path cannot leave a torn file behind.
// Concurrent writers race benignly: each writes its own unique temp file
// and the last rename wins.
#ifndef MOBISIM_SRC_UTIL_ATOMIC_FILE_H_
#define MOBISIM_SRC_UTIL_ATOMIC_FILE_H_

#include <string>

namespace mobisim {

// Writes `data` to `path` atomically.  On failure returns false with a
// description in `error` (when non-null); the temp file is cleaned up and
// any existing file at `path` is left untouched.
bool WriteFileAtomic(const std::string& path, const std::string& data,
                     std::string* error = nullptr);

// Reads the entire file into `data`.  Returns false with `error` set when
// the file cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* data,
                      std::string* error = nullptr);

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_ATOMIC_FILE_H_
