// Small blocking HTTP/1.0 client with real failure semantics.
//
// The sweepd remote-worker protocol runs over networks that partition,
// dispatchers that hang, and workers that get killed mid-request, so the
// client's contract is deadlines everywhere: connect() is bounded by a
// non-blocking connect + poll, every read and write by a socket timeout,
// and the whole response by one overall deadline.  A request either
// completes within its budget or fails with a message — it never wedges
// the caller.
//
// FetchWithRetry layers bounded exponential backoff with deterministic
// jitter on top, retrying only transport failures (connect refused, reset,
// timeout).  An HTTP-level error status is an *answer* from a live server
// and is returned to the caller, never retried — retrying a 410 lease
// rejection would just hammer a dispatcher that already said no.
//
// NetFaultInjector is the deterministic network-fault hook (in the spirit
// of src/fault): seed-driven drops, delays, and duplicated requests, strict
// no-op by default.  Duplication replays the full request after a
// successful exchange, which is exactly the stress the lease protocol's
// idempotent upload path must absorb.
#ifndef MOBISIM_SRC_UTIL_HTTP_CLIENT_H_
#define MOBISIM_SRC_UTIL_HTTP_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/util/http_server.h"
#include "src/util/rng.h"

namespace mobisim {

struct HttpClientOptions {
  double connect_timeout_sec = 5.0;  // TCP connect deadline
  double io_timeout_sec = 10.0;      // per-syscall stall AND whole-response deadline
  // Transport-failure retries beyond the first attempt.  Attempt k (0-based)
  // backs off backoff_base_sec * 2^k, capped at backoff_max_sec, each wait
  // scaled by a uniform [1, 2) jitter factor so a worker fleet retrying a
  // rebooted dispatcher does not arrive in lockstep.
  std::size_t max_retries = 4;
  double backoff_base_sec = 0.2;
  double backoff_max_sec = 5.0;
  std::uint64_t jitter_seed = 1;
};

// Seed-driven network-fault plan.  All rates default to zero: no draw is
// ever made and the injector is a strict no-op.
struct NetFaultConfig {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;   // request silently not sent (looks like a timeout)
  double dup_rate = 0.0;    // request replayed after a successful exchange
  double delay_rate = 0.0;  // request delayed by delay_ms before sending
  double delay_ms = 0.0;

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || (delay_rate > 0.0 && delay_ms > 0.0);
  }
};

// Parses "seed=7,drop=0.2,dup=0.2,delay=0.5,delay-ms=40" (any subset, any
// order).  Rates must be in [0, 1].  nullopt with `error` on bad input.
std::optional<NetFaultConfig> ParseNetFaultSpec(const std::string& text,
                                                std::string* error);

class NetFaultInjector {
 public:
  explicit NetFaultInjector(const NetFaultConfig& config);

  // Per-request draws, in this order: drop, delay, duplicate.  Each uses its
  // own PCG32 stream so enabling one fault kind never re-schedules another.
  bool DrawDrop();
  double DrawDelayMs();
  bool DrawDuplicate();

  struct Counts {
    std::uint64_t requests = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
  };
  const Counts& counts() const { return counts_; }
  void CountRequest() { ++counts_.requests; }

 private:
  NetFaultConfig config_;
  Rng drop_rng_;
  Rng delay_rng_;
  Rng dup_rng_;
  Counts counts_;
};

// Not thread-safe: the jitter stream, fault draws, and counters are plain
// state.  Give each thread (e.g. a worker's heartbeat thread) its own
// instance; they are cheap (a connection per request, HTTP/1.0 style).
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port,
             HttpClientOptions options = {});

  // Borrowed, may be null.  Faults apply to FetchWithRetry requests only:
  // a dropped draw consumes an attempt, a duplicate replays the request.
  void set_fault_injector(NetFaultInjector* injector) { injector_ = injector; }

  const HttpClientOptions& options() const { return options_; }
  std::uint64_t transport_failures() const { return transport_failures_; }

  // One attempt: connect (bounded), send `method path` with `body`
  // (Content-Length always present on POST), read the full response.
  // Returns false with `error` on any transport failure; true with the
  // parsed status and body otherwise — HTTP-level errors are the caller's
  // to interpret.
  bool Fetch(const std::string& method, const std::string& path,
             const std::string& body, HttpResponse* response,
             std::string* error);

  // Fetch with up to options().max_retries additional attempts on transport
  // failure, sleeping the backoff schedule between attempts.  Injected
  // drops/delays/duplicates (when a fault injector is set) happen here.
  bool FetchWithRetry(const std::string& method, const std::string& path,
                      const std::string& body, HttpResponse* response,
                      std::string* error);

 private:
  std::string host_;
  std::uint16_t port_;
  HttpClientOptions options_;
  NetFaultInjector* injector_ = nullptr;
  Rng jitter_rng_;
  std::uint64_t transport_failures_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HTTP_CLIENT_H_
