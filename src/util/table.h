// Aligned plain-text table and CSV output for the benchmark harnesses.
//
// Every bench binary reproduces one table or figure from the paper; this
// printer keeps their output uniform and diffable.
#ifndef MOBISIM_SRC_UTIL_TABLE_H_
#define MOBISIM_SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace mobisim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; shorter rows are padded with empty cells, longer rows are an
  // error caught by MOBISIM_CHECK.
  void AddRow(std::vector<std::string> cells);
  // Convenience for mixed-value rows built incrementally.
  TablePrinter& BeginRow();
  TablePrinter& Cell(const std::string& value);
  TablePrinter& Cell(double value, int precision = 2);
  TablePrinter& Cell(std::int64_t value);

  void Print(std::ostream& out) const;
  // Comma-separated form for downstream plotting.
  void PrintCsv(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

  static std::string Format(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool row_open_ = false;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_TABLE_H_
