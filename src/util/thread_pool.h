// Fixed-size worker pool for fanning simulation jobs across cores.
//
// Deliberately minimal: a single locked queue feeding std::thread workers, no
// work stealing, no dependencies beyond the standard library.  Simulation
// jobs are seconds long, so queue contention is irrelevant and a simple FIFO
// keeps completion order easy to reason about.  Exceptions thrown by jobs are
// captured; the first one is rethrown from Wait() (remaining jobs still run,
// so counters stay consistent and shutdown never hangs).
#ifndef MOBISIM_SRC_UTIL_THREAD_POOL_H_
#define MOBISIM_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mobisim {

class ThreadPool {
 public:
  // Spawns `thread_count` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(std::size_t thread_count = 0);
  // Waits for queued jobs to finish, then joins the workers.  Any captured
  // exception is swallowed here (call Wait() first if you care).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job.  Must not be called concurrently with the destructor.
  void Submit(std::function<void()> job);

  // Blocks until every submitted job has completed.  If any job threw, the
  // first captured exception is rethrown (and cleared, so the pool remains
  // usable afterwards).
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

  // std::thread::hardware_concurrency with a floor of 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

// Runs fn(0..count-1) across the pool and waits; propagates the first
// exception.  With a null pool (or a single worker and an empty queue the
// call degenerates to the same serial order) jobs run inline on the caller.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_THREAD_POOL_H_
