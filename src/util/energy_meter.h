// Per-component energy accounting.
//
// Every powered component (storage device, DRAM cache, SRAM buffer) owns an
// EnergyMeter configured with its operating modes and the power drawn in
// each.  Energy is integrated as mode-power x time-in-mode, mirroring the
// methodology of Douglis et al. (OSDI '94), section 4.2.
#ifndef MOBISIM_SRC_UTIL_ENERGY_METER_H_
#define MOBISIM_SRC_UTIL_ENERGY_METER_H_

#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/sim_time.h"

namespace mobisim {

class EnergyMeter {
 public:
  struct Mode {
    std::string name;
    double power_w = 0.0;
  };

  explicit EnergyMeter(std::vector<Mode> modes);

  // Accounts `duration_us` spent in `mode` (index into the constructor
  // list).  Inline: the device models call this on every state transition,
  // several times per simulated operation.
  void Accumulate(std::size_t mode, SimTime duration_us) {
    MOBISIM_DCHECK(mode < modes_.size());
    MOBISIM_DCHECK(duration_us >= 0);
    time_us_[mode] += duration_us;
    joules_[mode] += modes_[mode].power_w * SecFromUs(duration_us);
  }
  // Accounts a fixed energy cost (e.g. per-byte DRAM access energy).
  void AccumulateJoules(std::size_t mode, double joules) {
    MOBISIM_DCHECK(mode < modes_.size());
    joules_[mode] += joules;
  }

  double total_joules() const;
  double mode_joules(std::size_t mode) const;
  SimTime mode_time_us(std::size_t mode) const;
  const std::string& mode_name(std::size_t mode) const;
  std::size_t mode_count() const { return modes_.size(); }

  // Human-readable one-line breakdown, e.g. "idle=8820.0J active=34.1J".
  std::string Breakdown() const;

 private:
  std::vector<Mode> modes_;
  std::vector<double> joules_;
  std::vector<SimTime> time_us_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_ENERGY_METER_H_
