#include "src/util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/util/check.h"

namespace mobisim {

AsciiPlot::AsciiPlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void AsciiPlot::AddSeries(const std::string& name, char glyph, std::vector<double> xs,
                          std::vector<double> ys) {
  MOBISIM_CHECK(xs.size() == ys.size());
  series_.push_back(Series{name, glyph, std::move(xs), std::move(ys)});
}

void AsciiPlot::SetSize(std::size_t width, std::size_t height) {
  MOBISIM_CHECK(width >= 16 && height >= 6);
  width_ = width;
  height_ = height;
}

void AsciiPlot::SetYRange(double lo, double hi) {
  MOBISIM_CHECK(lo < hi);
  fixed_y_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

void AsciiPlot::Render(std::ostream& out) const {
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = fixed_y_ ? y_lo_ : std::numeric_limits<double>::infinity();
  double y_hi = fixed_y_ ? y_hi_ : -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      any = true;
      x_lo = std::min(x_lo, s.xs[i]);
      x_hi = std::max(x_hi, s.xs[i]);
      if (!fixed_y_) {
        y_lo = std::min(y_lo, s.ys[i]);
        y_hi = std::max(y_hi, s.ys[i]);
      }
    }
  }
  if (!any) {
    out << title_ << ": (no data)\n";
    return;
  }
  if (x_hi == x_lo) {
    x_hi = x_lo + 1.0;
  }
  if (y_hi == y_lo) {
    y_hi = y_lo + 1.0;
  }
  if (!fixed_y_) {
    const double margin = 0.05 * (y_hi - y_lo);
    y_lo -= margin;
    y_hi += margin;
  }

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto plot_point = [&](double x, double y, char glyph) {
    const double fx = (x - x_lo) / (x_hi - x_lo);
    const double fy = (y - y_lo) / (y_hi - y_lo);
    const auto col = static_cast<std::size_t>(
        std::lround(fx * static_cast<double>(width_ - 1)));
    const auto row = static_cast<std::size_t>(
        std::lround((1.0 - fy) * static_cast<double>(height_ - 1)));
    if (row < height_ && col < width_) {
      grid[row][col] = glyph;
    }
  };
  // Connect consecutive points with interpolated samples so sparse series
  // read as lines.
  for (const Series& s : series_) {
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const int steps = static_cast<int>(width_);
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot_point(s.xs[i] + t * (s.xs[i + 1] - s.xs[i]),
                   s.ys[i] + t * (s.ys[i + 1] - s.ys[i]), s.glyph);
      }
    }
    if (s.xs.size() == 1) {
      plot_point(s.xs[0], s.ys[0], s.glyph);
    }
  }

  out << title_ << "\n";
  char buf[64];
  for (std::size_t row = 0; row < height_; ++row) {
    const double y = y_hi - (y_hi - y_lo) * static_cast<double>(row) /
                                static_cast<double>(height_ - 1);
    if (row % 4 == 0 || row == height_ - 1) {
      std::snprintf(buf, sizeof(buf), "%10.2f |", y);
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out << buf << grid[row] << "\n";
  }
  out << std::string(11, ' ') << '+' << std::string(width_, '-') << "\n";
  std::snprintf(buf, sizeof(buf), "%10.2f", x_lo);
  out << std::string(11, ' ') << buf;
  std::snprintf(buf, sizeof(buf), "%.2f", x_hi);
  const std::string hi_label(buf);
  const std::size_t pad = width_ > hi_label.size() + 10 ? width_ - hi_label.size() - 10 : 1;
  out << std::string(pad, ' ') << hi_label << "\n";
  out << std::string(13, ' ') << x_label_ << "  (y: " << y_label_ << ")\n";
  for (const Series& s : series_) {
    out << std::string(13, ' ') << s.glyph << " = " << s.name << "\n";
  }
}

}  // namespace mobisim
