// Human-readable byte counts.
//
// One shared formatter for every place that reports storage sizes to a
// person (trace-cache stats/gc, the sweepd /status endpoint): raw byte
// counts stay in the machine-readable columns, HumanBytes renders the
// display form.
#ifndef MOBISIM_SRC_UTIL_BYTES_H_
#define MOBISIM_SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace mobisim {

// "0 B", "512 B", "1.5 KiB", "23.4 MiB", "1.2 GiB".  Binary units (1 KiB =
// 1024 B) to match how capacities are specified everywhere else (ParseSize's
// k/m/g suffixes).  One decimal for scaled units, exact count for bytes.
inline std::string HumanBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"KiB", "MiB", "GiB", "TiB", "PiB"};
  if (bytes < 1024) {
    return std::to_string(bytes) + " B";
  }
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  value /= 1024.0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_BYTES_H_
