// ASCII line/scatter charts for the figure-reproduction benches.
//
// Renders one or more (x, y) series into a character grid with axes, tick
// labels, and per-series glyphs, so `bench_fig*` binaries can show the
// paper's figures directly in a terminal alongside their data tables.
#ifndef MOBISIM_SRC_UTIL_ASCII_PLOT_H_
#define MOBISIM_SRC_UTIL_ASCII_PLOT_H_

#include <ostream>
#include <string>
#include <vector>

namespace mobisim {

class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string x_label, std::string y_label);

  // Adds a named series; `glyph` marks its points.
  void AddSeries(const std::string& name, char glyph, std::vector<double> xs,
                 std::vector<double> ys);

  // Plot area size in characters (default 64 x 20).
  void SetSize(std::size_t width, std::size_t height);
  // Force axis ranges (otherwise auto-scaled to the data with 5% margin).
  void SetYRange(double lo, double hi);

  void Render(std::ostream& out) const;

 private:
  struct Series {
    std::string name;
    char glyph;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::size_t width_ = 64;
  std::size_t height_ = 20;
  bool fixed_y_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
  std::vector<Series> series_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_ASCII_PLOT_H_
