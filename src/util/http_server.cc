#include "src/util/http_server.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mobisim {

namespace {

// Short timeout on every socket read/write: a stalled peer drops its own
// connection instead of wedging the accept loop (status polls are tiny).
void SetIoTimeout(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << " " << StatusText(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  return out.str();
}

// Reads until the end of the request headers (or the timeout); only the
// request line is ever parsed.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->find("\r\n\r\n") == std::string::npos &&
         head->find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return !head->empty() && head->find('\n') != std::string::npos;
    }
    head->append(buf, static_cast<std::size_t>(n));
    if (head->size() > 64 * 1024) {
      return false;  // nobody sends 64 KB of headers to a status endpoint
    }
  }
  return true;
}

}  // namespace

HttpResponse HttpNotFound() {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\":\"not found\"}\n";
  return response;
}

bool HttpServer::Start(std::uint16_t port, Handler handler, std::string* error) {
  Stop();
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = "bind 127.0.0.1:" + std::to_string(port) + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this, fd] { AcceptLoop(fd); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  // shutdown() wakes the blocked accept(); the loop then sees the closed fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) {
    thread_.join();
  }
  port_ = 0;
}

void HttpServer::AcceptLoop(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listening socket closed: Stop() was called
    }
    SetIoTimeout(fd);
    std::string head;
    if (ReadRequestHead(fd, &head)) {
      HttpRequest request;
      std::istringstream line(head.substr(0, head.find('\n')));
      line >> request.method >> request.path;
      HttpResponse response;
      if (request.method != "GET") {
        response.status = 405;
        response.body = "{\"error\":\"GET only\"}\n";
      } else {
        response = handler_(request);
      }
      WriteAll(fd, RenderResponse(response));
    }
    ::close(fd);
  }
}

bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error, int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  SetIoTimeout(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!WriteAll(fd, request)) {
    if (error != nullptr) {
      *error = "send failed";
    }
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (error != nullptr) {
      *error = "malformed HTTP response";
    }
    return false;
  }
  if (status != nullptr) {
    // "HTTP/1.0 200 OK" -> 200; atoi semantics are fine for a 3-digit code.
    const std::size_t space = response.find(' ');
    *status = space == std::string::npos
                  ? 0
                  : std::atoi(response.c_str() + space + 1);
  }
  if (body != nullptr) {
    *body = response.substr(header_end + 4);
  }
  return true;
}

}  // namespace mobisim
