#include "src/util/http_server.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/http_client.h"
#include "src/util/parse.h"

namespace mobisim {

namespace {

// Short timeout on every socket read/write: a stalled peer drops its own
// connection instead of wedging the accept loop (requests are small).
void SetIoTimeout(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 410:
      return "Gone";
    case 413:
      return "Payload Too Large";
    default:
      return "Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << " " << StatusText(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  return out.str();
}

// Reads until the end of the request headers (or the timeout).  Returns
// false when the peer vanished before sending a complete header block or
// exceeded the header cap; `*data` keeps whatever arrived (headers plus any
// body prefix read along with them), `*header_end` the offset just past the
// blank line.
bool ReadRequestHead(int fd, std::string* data, std::size_t* header_end) {
  char buf[4096];
  while (true) {
    std::size_t end = data->find("\r\n\r\n");
    std::size_t skip = 4;
    if (end == std::string::npos) {
      end = data->find("\n\n");
      skip = 2;
    }
    if (end != std::string::npos) {
      *header_end = end + skip;
      return true;
    }
    if (data->size() > kHttpMaxHeaderBytes) {
      return false;  // nobody sends 64 KB of headers to a sweep endpoint
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return false;
    }
    data->append(buf, static_cast<std::size_t>(n));
  }
}

// Case-insensitive Content-Length lookup over the raw header block.
// Returns false on a malformed or non-numeric value ("Content-Length: huge"
// must be a clean 400, not an allocation).
bool FindContentLength(const std::string& head, std::size_t* length,
                       bool* present) {
  *length = 0;
  *present = false;
  std::istringstream lines(head);
  std::string line;
  std::getline(lines, line);  // request line
  while (std::getline(lines, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, colon);
    for (char& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (key != "content-length") {
      continue;
    }
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.erase(value.begin());
    }
    while (!value.empty() &&
           (value.back() == '\r' || value.back() == ' ' || value.back() == '\t')) {
      value.pop_back();
    }
    const auto parsed = ParseUint64(value);
    if (!parsed) {
      return false;
    }
    *length = static_cast<std::size_t>(*parsed);
    *present = true;
    return true;
  }
  return true;
}

}  // namespace

HttpResponse HttpNotFound() { return HttpError(404, "not found"); }

HttpResponse HttpError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + message + "\"}\n";
  return response;
}

bool HttpServer::Start(std::uint16_t port, bool bind_any, Handler handler,
                       std::string* error) {
  Stop();
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("bind ") + (bind_any ? "0.0.0.0:" : "127.0.0.1:") +
               std::to_string(port) + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this, fd] { AcceptLoop(fd); });
  return true;
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  // shutdown() wakes the blocked accept(); the loop then sees the closed fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) {
    thread_.join();
  }
  port_ = 0;
}

void HttpServer::AcceptLoop(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listening socket closed: Stop() was called
    }
    SetIoTimeout(fd);

    // Parse one request, answer once, close.  Every early exit below still
    // sends a well-formed error response when the peer is alive enough to
    // receive one — hostile input must never hang or crash the endpoint.
    std::string data;
    std::size_t header_end = 0;
    if (!ReadRequestHead(fd, &data, &header_end)) {
      if (data.size() > kHttpMaxHeaderBytes) {
        WriteAll(fd, RenderResponse(HttpError(400, "oversized request head")));
      } else if (!data.empty()) {
        // Torn request: bytes arrived but never a complete header block.
        WriteAll(fd, RenderResponse(HttpError(400, "truncated request")));
      }
      ::close(fd);
      continue;
    }

    const std::string head = data.substr(0, header_end);
    HttpRequest request;
    std::string version;
    {
      std::istringstream line(head.substr(0, head.find('\n')));
      line >> request.method >> request.path >> version;
    }
    if (request.method.empty() || request.path.empty() ||
        request.path[0] != '/') {
      WriteAll(fd, RenderResponse(HttpError(400, "malformed request line")));
      ::close(fd);
      continue;
    }
    if (request.method != "GET" && request.method != "POST") {
      WriteAll(fd, RenderResponse(HttpError(405, "GET or POST only")));
      ::close(fd);
      continue;
    }

    std::size_t content_length = 0;
    bool has_length = false;
    if (!FindContentLength(head, &content_length, &has_length)) {
      WriteAll(fd, RenderResponse(HttpError(400, "bad Content-Length")));
      ::close(fd);
      continue;
    }
    if (request.method == "GET" && has_length && content_length > 0) {
      // A GET carrying a body is a confused or hostile client; answer
      // cleanly without ever reading the body.
      WriteAll(fd, RenderResponse(HttpError(400, "GET does not take a body")));
      ::close(fd);
      continue;
    }
    if (content_length > kHttpMaxBodyBytes) {
      WriteAll(fd, RenderResponse(HttpError(413, "body too large")));
      ::close(fd);
      continue;
    }

    if (request.method == "POST" && content_length > 0) {
      // Whatever followed the blank line was already read; recv the rest.
      request.body = data.substr(header_end);
      bool torn = false;
      char buf[4096];
      while (request.body.size() < content_length) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
          torn = true;  // peer died or stalled mid-body
          break;
        }
        request.body.append(buf, static_cast<std::size_t>(n));
      }
      if (torn) {
        WriteAll(fd, RenderResponse(HttpError(400, "truncated body")));
        ::close(fd);
        continue;
      }
      request.body.resize(content_length);  // ignore trailing surplus bytes
    }

    WriteAll(fd, RenderResponse(handler_(request)));
    ::close(fd);
  }
}

bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error, int* status, double timeout_sec) {
  HttpClientOptions options;
  options.connect_timeout_sec = timeout_sec;
  options.io_timeout_sec = timeout_sec;
  options.max_retries = 0;  // a status poll either answers now or fails now
  HttpClient client("127.0.0.1", port, options);
  HttpResponse response;
  if (!client.Fetch("GET", path, "", &response, error)) {
    return false;
  }
  if (status != nullptr) {
    *status = response.status;
  }
  if (body != nullptr) {
    *body = response.body;
  }
  return true;
}

}  // namespace mobisim
