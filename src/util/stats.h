// Streaming statistics used throughout the simulator for response times,
// energy, inter-arrival gaps, and erase counts.
#ifndef MOBISIM_SRC_UTIL_STATS_H_
#define MOBISIM_SRC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mobisim {

// Welford-style accumulator: O(1) per sample, numerically stable mean and
// standard deviation, plus min/max/sum.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double value);
  // Merges another accumulator into this one (parallel composition).
  void Merge(const RunningStats& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  // Population variance/stddev (matches how the paper reports sigma over all
  // simulated operations).
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Bounded uniform reservoir sample for percentile estimation over streams of
// unknown range (latencies span five orders of magnitude, so fixed histogram
// buckets fit poorly).  Deterministic: the replacement choices come from a
// seeded PCG32.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity = 65536, std::uint64_t seed = 0x5eed);

  void Add(double value);
  std::uint64_t count() const { return seen_; }
  std::size_t sample_size() const { return values_.size(); }
  // Quantile estimate, q in [0, 1]; 0 with no data.
  double Quantile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> values_;
  std::uint64_t rng_state_;
};

// Fixed-width linear histogram with overflow bucket; used by benches to
// report latency distributions and by tests to sanity-check generators.
class Histogram {
 public:
  // Buckets: [lo, lo+width), [lo+width, ...), ..., plus an overflow bucket.
  Histogram(double lo, double bucket_width, std::size_t bucket_count);

  void Add(double value);

  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Linear-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_STATS_H_
