// Streaming statistics used throughout the simulator for response times,
// energy, inter-arrival gaps, and erase counts.
#ifndef MOBISIM_SRC_UTIL_STATS_H_
#define MOBISIM_SRC_UTIL_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mobisim {

// Welford-style accumulator: O(1) per sample, numerically stable mean and
// standard deviation, plus min/max/sum.  Add is inline — it runs once per
// simulated operation, several times over.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double value) {
    ++count_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  // Merges another accumulator into this one (parallel composition).
  void Merge(const RunningStats& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return sum_; }
  // Population variance/stddev (matches how the paper reports sigma over all
  // simulated operations).
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Bounded uniform reservoir sample for percentile estimation over streams of
// unknown range (latencies span five orders of magnitude, so fixed histogram
// buckets fit poorly).  Deterministic: the replacement choices come from a
// seeded PCG32.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity = 65536, std::uint64_t seed = 0x5eed);

  void Add(double value) {
    ++seen_;
    if (values_.size() < capacity_) {
      values_.push_back(value);
      return;
    }
    // Vitter's algorithm R with a splitmix-style generator.
    rng_state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const std::uint64_t slot = z % seen_;
    if (slot < values_.size()) {
      values_[slot] = value;
    }
  }
  std::uint64_t count() const { return seen_; }
  std::size_t sample_size() const { return values_.size(); }
  // Quantile estimate, q in [0, 1]; 0 with no data.
  double Quantile(double q) const;
  // All of `qs` from ONE copy + sort of the reservoir.  Each element equals
  // Quantile(qs[i]) exactly; callers needing several percentiles (the
  // p50/p95/p99 result columns) use this instead of paying the sort per
  // quantile.
  std::vector<double> Quantiles(const std::vector<double>& qs) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> values_;
  std::uint64_t rng_state_;
};

// Fixed-width linear histogram with overflow bucket; used by benches to
// report latency distributions and by tests to sanity-check generators.
class Histogram {
 public:
  // Buckets: [lo, lo+width), [lo+width, ...), ..., plus an overflow bucket.
  Histogram(double lo, double bucket_width, std::size_t bucket_count);

  void Add(double value);

  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Linear-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_STATS_H_
