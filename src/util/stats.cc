#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mobisim {

void RunningStats::Add(double value) {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed * 6364136223846793005ULL + 1442695040888963407ULL) {
  MOBISIM_CHECK(capacity > 0);
  values_.reserve(std::min<std::size_t>(capacity, 4096));
}

void ReservoirSample::Add(double value) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(value);
    return;
  }
  // Vitter's algorithm R with a splitmix-style generator.
  rng_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::uint64_t slot = z % seen_;
  if (slot < values_.size()) {
    values_[slot] = value;
  }
}

double ReservoirSample::Quantile(double q) const {
  MOBISIM_CHECK(q >= 0.0 && q <= 1.0);
  if (values_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double bucket_width, std::size_t bucket_count)
    : lo_(lo), width_(bucket_width), counts_(bucket_count, 0) {
  MOBISIM_CHECK(bucket_width > 0.0);
  MOBISIM_CHECK(bucket_count > 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (value - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

double Histogram::Quantile(double q) const {
  MOBISIM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double fraction = (target - cumulative) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + fraction * width_;
    }
    cumulative = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace mobisim
