#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mobisim {

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed * 6364136223846793005ULL + 1442695040888963407ULL) {
  MOBISIM_CHECK(capacity > 0);
  values_.reserve(std::min<std::size_t>(capacity, 4096));
}

namespace {

// Shared by Quantile/Quantiles so the two agree bit-for-bit.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double ReservoirSample::Quantile(double q) const {
  MOBISIM_CHECK(q >= 0.0 && q <= 1.0);
  if (values_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  return SortedQuantile(sorted, q);
}

std::vector<double> ReservoirSample::Quantiles(const std::vector<double>& qs) const {
  std::vector<double> out;
  if (values_.empty()) {
    out.assign(qs.size(), 0.0);
    return out;
  }
  const std::size_t n = values_.size();
  // Every rank the interpolation below will read.
  std::vector<std::size_t> ranks;
  ranks.reserve(qs.size() * 2);
  for (const double q : qs) {
    MOBISIM_CHECK(q >= 0.0 && q <= 1.0);
    const auto lo = static_cast<std::size_t>(q * static_cast<double>(n - 1));
    ranks.push_back(lo);
    ranks.push_back(std::min(lo + 1, n - 1));
  }
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  // Selection instead of a full sort: ascending nth_element passes, each
  // restricted to the suffix the previous pass proved holds all later
  // ranks.  v[r] ends up the exact r-th order statistic — the same value a
  // sort would put there — so the result matches Quantile bit-for-bit.
  std::vector<double> v = values_;
  std::size_t begin = 0;
  for (const std::size_t r : ranks) {
    std::nth_element(v.begin() + static_cast<std::ptrdiff_t>(begin),
                     v.begin() + static_cast<std::ptrdiff_t>(r), v.end());
    // Exclude the settled position from later passes so they cannot disturb
    // it.
    begin = r + 1;
  }
  out.reserve(qs.size());
  for (const double q : qs) {
    const double pos = q * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(v[lo] * (1.0 - frac) + v[hi] * frac);
  }
  return out;
}

Histogram::Histogram(double lo, double bucket_width, std::size_t bucket_count)
    : lo_(lo), width_(bucket_width), counts_(bucket_count, 0) {
  MOBISIM_CHECK(bucket_width > 0.0);
  MOBISIM_CHECK(bucket_count > 0);
}

void Histogram::Add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (value - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

double Histogram::Quantile(double q) const {
  MOBISIM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double fraction = (target - cumulative) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + fraction * width_;
    }
    cumulative = next;
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace mobisim
