// Flat open-addressing containers for block addresses.
//
// The simulator probes the DRAM cache and SRAM buffer once per block of
// every operation — the hottest lookups in the whole run.  std::unordered_*
// pays a node allocation and a pointer chase per element; these containers
// keep everything in contiguous arrays (linear probing, power-of-two
// tables, backward-shift deletion, no tombstones) so a probe is one or two
// cache lines.
//
// Both containers reserve the all-ones key ~0ull as an internal sentinel;
// block addresses are bounded far below it (DCHECK'd on insert).  Neither
// exposes iteration order — callers that need ordered output (DrainDirty /
// Drain) collect and sort, so results never depend on table layout.
#ifndef MOBISIM_SRC_UTIL_BLOCK_HASH_H_
#define MOBISIM_SRC_UTIL_BLOCK_HASH_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace mobisim {

// Multiply-xor mix: spreads the mostly-sequential low bits of an LBA over
// the whole word so linear probing sees short runs, not long chains.
inline std::uint64_t BlockHashMix(std::uint64_t lba) {
  std::uint64_t h = lba * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  return h;
}

// Open-addressing set of block addresses (SramWriteBuffer's dirty set).
class FlatBlockSet {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(std::uint64_t lba) const {
    if (buckets_.empty()) {
      return false;
    }
    const std::size_t mask = buckets_.size() - 1;
    std::size_t pos = BlockHashMix(lba) & mask;
    while (buckets_[pos] != kEmpty) {
      if (buckets_[pos] == lba) {
        return true;
      }
      pos = (pos + 1) & mask;
    }
    return false;
  }

  // Returns true if `lba` was newly inserted.
  bool insert(std::uint64_t lba) {
    MOBISIM_DCHECK(lba != kEmpty);
    if ((size_ + 1) * 8 >= buckets_.size() * 7) {
      Grow();
    }
    const std::size_t mask = buckets_.size() - 1;
    std::size_t pos = BlockHashMix(lba) & mask;
    while (buckets_[pos] != kEmpty) {
      if (buckets_[pos] == lba) {
        return false;
      }
      pos = (pos + 1) & mask;
    }
    buckets_[pos] = lba;
    ++size_;
    return true;
  }

  // Returns true if `lba` was present.  Backward-shift deletion keeps the
  // table tombstone-free, so probe lengths never degrade.
  bool erase(std::uint64_t lba) {
    if (buckets_.empty()) {
      return false;
    }
    const std::size_t mask = buckets_.size() - 1;
    std::size_t pos = BlockHashMix(lba) & mask;
    while (true) {
      if (buckets_[pos] == kEmpty) {
        return false;
      }
      if (buckets_[pos] == lba) {
        break;
      }
      pos = (pos + 1) & mask;
    }
    std::size_t hole = pos;
    std::size_t probe = pos;
    while (true) {
      probe = (probe + 1) & mask;
      if (buckets_[probe] == kEmpty) {
        break;
      }
      const std::size_t home = BlockHashMix(buckets_[probe]) & mask;
      if (((probe - home) & mask) >= ((probe - hole) & mask)) {
        buckets_[hole] = buckets_[probe];
        hole = probe;
      }
    }
    buckets_[hole] = kEmpty;
    --size_;
    return true;
  }

  void clear() {
    buckets_.assign(buckets_.size(), kEmpty);
    size_ = 0;
  }

  // Appends every element, in unspecified order; callers sort.
  void CollectInto(std::vector<std::uint64_t>* out) const {
    for (const std::uint64_t b : buckets_) {
      if (b != kEmpty) {
        out->push_back(b);
      }
    }
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  void Grow() {
    const std::size_t new_size = buckets_.empty() ? 64 : buckets_.size() * 2;
    std::vector<std::uint64_t> old = std::move(buckets_);
    buckets_.assign(new_size, kEmpty);
    const std::size_t mask = new_size - 1;
    for (const std::uint64_t b : old) {
      if (b == kEmpty) {
        continue;
      }
      std::size_t pos = BlockHashMix(b) & mask;
      while (buckets_[pos] != kEmpty) {
        pos = (pos + 1) & mask;
      }
      buckets_[pos] = b;
    }
  }

  std::vector<std::uint64_t> buckets_;
  std::size_t size_ = 0;
};

// LRU map of block addresses with a dirty bit per entry (BufferCache's
// index + recency list + dirty set, fused).  The hash table stores indices
// into a contiguous entry array; the LRU list is intrusive (prev/next
// indices in the entries), so a touch is two probes' worth of cache lines
// and zero allocations.
class LruBlockMap {
 public:
  std::size_t size() const { return size_; }
  std::size_t dirty_count() const { return dirty_count_; }

  bool Contains(std::uint64_t lba) const { return FindBucket(lba) != kNpos; }

  // Moves a present entry to the MRU position; single probe.  Returns false
  // (and does nothing) when absent.
  bool TouchIfPresent(std::uint64_t lba) {
    const std::size_t bucket = FindBucket(lba);
    if (bucket == kNpos) {
      return false;
    }
    MoveToFront(table_[bucket]);
    return true;
  }

  // Inserts `lba` as the MRU entry, clean.  Must not be present.
  void InsertFront(std::uint64_t lba) {
    MOBISIM_DCHECK(lba + 1 != 0);
    if ((size_ + 1) * 8 >= table_.size() * 7) {
      Grow();
    }
    const std::uint32_t idx = AllocEntry(lba);
    const std::size_t mask = table_.size() - 1;
    std::size_t pos = BlockHashMix(lba) & mask;
    while (table_[pos] != kEmpty) {
      MOBISIM_DCHECK(entries_[table_[pos]].lba != lba);
      pos = (pos + 1) & mask;
    }
    table_[pos] = idx;
    LinkFront(idx);
    ++size_;
  }

  // Removes the LRU entry; returns its lba and whether it was dirty.  Must
  // be non-empty.
  std::uint64_t EvictLru(bool* was_dirty) {
    MOBISIM_DCHECK(tail_ != kEmpty);
    const std::uint32_t idx = tail_;
    const std::uint64_t lba = entries_[idx].lba;
    *was_dirty = entries_[idx].dirty;
    EraseBucketOf(lba);
    Unlink(idx);
    FreeEntry(idx);
    --size_;
    return lba;
  }

  // Removes an arbitrary entry; reports presence and dirtiness.
  bool Erase(std::uint64_t lba, bool* was_dirty) {
    const std::size_t bucket = FindBucket(lba);
    if (bucket == kNpos) {
      *was_dirty = false;
      return false;
    }
    const std::uint32_t idx = table_[bucket];
    *was_dirty = entries_[idx].dirty;
    EraseBucket(bucket);
    Unlink(idx);
    FreeEntry(idx);
    --size_;
    return true;
  }

  // Sets the dirty bit on a present entry; returns false when absent.
  bool MarkDirty(std::uint64_t lba) {
    const std::size_t bucket = FindBucket(lba);
    if (bucket == kNpos) {
      return false;
    }
    Entry& e = entries_[table_[bucket]];
    if (!e.dirty) {
      e.dirty = true;
      ++dirty_count_;
    }
    return true;
  }

  // Appends every dirty lba, in unspecified order; callers sort.
  void CollectDirty(std::vector<std::uint64_t>* out) const {
    for (std::uint32_t idx = head_; idx != kEmpty; idx = entries_[idx].next) {
      if (entries_[idx].dirty) {
        out->push_back(entries_[idx].lba);
      }
    }
  }

  // Clears every dirty bit, keeping all entries cached (the sync path).
  void ClearDirtyBits() {
    for (std::uint32_t idx = head_; idx != kEmpty; idx = entries_[idx].next) {
      entries_[idx].dirty = false;
    }
    dirty_count_ = 0;
  }

  void Clear() {
    table_.assign(table_.size(), kEmpty);
    entries_.clear();
    head_ = tail_ = free_head_ = kEmpty;
    size_ = 0;
    dirty_count_ = 0;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  struct Entry {
    std::uint64_t lba = 0;
    std::uint32_t prev = kEmpty;
    std::uint32_t next = kEmpty;
    bool dirty = false;
  };

  std::size_t FindBucket(std::uint64_t lba) const {
    if (table_.empty()) {
      return kNpos;
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t pos = BlockHashMix(lba) & mask;
    while (table_[pos] != kEmpty) {
      if (entries_[table_[pos]].lba == lba) {
        return pos;
      }
      pos = (pos + 1) & mask;
    }
    return kNpos;
  }

  void EraseBucketOf(std::uint64_t lba) {
    const std::size_t bucket = FindBucket(lba);
    MOBISIM_DCHECK(bucket != kNpos);
    EraseBucket(bucket);
  }

  // Backward-shift deletion of one table slot.
  void EraseBucket(std::size_t bucket) {
    const std::size_t mask = table_.size() - 1;
    std::size_t hole = bucket;
    std::size_t probe = bucket;
    while (true) {
      probe = (probe + 1) & mask;
      if (table_[probe] == kEmpty) {
        break;
      }
      const std::size_t home = BlockHashMix(entries_[table_[probe]].lba) & mask;
      if (((probe - home) & mask) >= ((probe - hole) & mask)) {
        table_[hole] = table_[probe];
        hole = probe;
      }
    }
    table_[hole] = kEmpty;
  }

  std::uint32_t AllocEntry(std::uint64_t lba) {
    std::uint32_t idx;
    if (free_head_ != kEmpty) {
      idx = free_head_;
      free_head_ = entries_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(entries_.size());
      entries_.emplace_back();
    }
    entries_[idx].lba = lba;
    entries_[idx].dirty = false;
    return idx;
  }

  void FreeEntry(std::uint32_t idx) {
    if (entries_[idx].dirty) {
      --dirty_count_;
    }
    entries_[idx].next = free_head_;
    free_head_ = idx;
  }

  void LinkFront(std::uint32_t idx) {
    entries_[idx].prev = kEmpty;
    entries_[idx].next = head_;
    if (head_ != kEmpty) {
      entries_[head_].prev = idx;
    }
    head_ = idx;
    if (tail_ == kEmpty) {
      tail_ = idx;
    }
  }

  void Unlink(std::uint32_t idx) {
    const std::uint32_t prev = entries_[idx].prev;
    const std::uint32_t next = entries_[idx].next;
    if (prev != kEmpty) {
      entries_[prev].next = next;
    } else {
      head_ = next;
    }
    if (next != kEmpty) {
      entries_[next].prev = prev;
    } else {
      tail_ = prev;
    }
  }

  void MoveToFront(std::uint32_t idx) {
    if (head_ == idx) {
      return;
    }
    Unlink(idx);
    LinkFront(idx);
  }

  void Grow() {
    const std::size_t new_size = table_.empty() ? 64 : table_.size() * 2;
    table_.assign(new_size, kEmpty);
    const std::size_t mask = new_size - 1;
    for (std::uint32_t idx = head_; idx != kEmpty; idx = entries_[idx].next) {
      std::size_t pos = BlockHashMix(entries_[idx].lba) & mask;
      while (table_[pos] != kEmpty) {
        pos = (pos + 1) & mask;
      }
      table_[pos] = idx;
    }
  }

  std::vector<std::uint32_t> table_;
  std::vector<Entry> entries_;
  std::uint32_t head_ = kEmpty;
  std::uint32_t tail_ = kEmpty;
  std::uint32_t free_head_ = kEmpty;
  std::size_t size_ = 0;
  std::size_t dirty_count_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_BLOCK_HASH_H_
