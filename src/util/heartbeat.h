// Heartbeat files: how a worker process proves it is still alive.
//
// A lease-based dispatcher cannot ask a dead process anything, so liveness
// is written to the shared filesystem instead: the worker rewrites a small
// file every interval, and the dispatcher compares the file's mtime against
// the lease deadline.  The file body carries a progress counter and an owner
// id, so the dispatcher can also detect "my spawned worker with pid P died"
// without waiting out the full lease.
//
// Writes go through WriteFileAtomic, so a reader never sees a torn
// heartbeat even if the writer is killed mid-write.
#ifndef MOBISIM_SRC_UTIL_HEARTBEAT_H_
#define MOBISIM_SRC_UTIL_HEARTBEAT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace mobisim {

struct HeartbeatRecord {
  std::uint64_t counter = 0;  // progress units completed (e.g. rows written)
  std::uint64_t owner = 0;    // writer's id (pid for spawned workers)
};

// Writes `record` to `path` atomically.  False with `error` set on failure.
bool WriteHeartbeat(const std::string& path, const HeartbeatRecord& record,
                    std::string* error = nullptr);

// Parses a heartbeat file; nullopt when missing or malformed.
std::optional<HeartbeatRecord> ReadHeartbeat(const std::string& path);

// Seconds since `path` was last modified; nullopt when the file is missing.
// This is the dispatcher's staleness test for lease expiry.
std::optional<double> SecondsSinceModified(const std::string& path);

// Background thread that rewrites a heartbeat file every `interval_sec`,
// reading the live counter through `counter_fn` each beat.  One beat is
// written immediately on Start (claiming a lease and proving liveness are
// the same write).  Stop() (or destruction) writes a final beat and joins.
class HeartbeatThread {
 public:
  HeartbeatThread() = default;
  ~HeartbeatThread() { Stop(); }
  HeartbeatThread(const HeartbeatThread&) = delete;
  HeartbeatThread& operator=(const HeartbeatThread&) = delete;

  void Start(std::string path, double interval_sec, std::uint64_t owner,
             std::function<std::uint64_t()> counter_fn);
  void Stop();

 private:
  std::string path_;
  std::uint64_t owner_ = 0;
  std::function<std::uint64_t()> counter_fn_;
  std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HEARTBEAT_H_
