#include "src/util/energy_meter.h"

#include <cstdio>

#include "src/util/check.h"

namespace mobisim {

EnergyMeter::EnergyMeter(std::vector<Mode> modes)
    : modes_(std::move(modes)), joules_(modes_.size(), 0.0), time_us_(modes_.size(), 0) {
  MOBISIM_CHECK(!modes_.empty());
}

double EnergyMeter::total_joules() const {
  double total = 0.0;
  for (const double j : joules_) {
    total += j;
  }
  return total;
}

double EnergyMeter::mode_joules(std::size_t mode) const {
  MOBISIM_DCHECK(mode < modes_.size());
  return joules_[mode];
}

SimTime EnergyMeter::mode_time_us(std::size_t mode) const {
  MOBISIM_DCHECK(mode < modes_.size());
  return time_us_[mode];
}

const std::string& EnergyMeter::mode_name(std::size_t mode) const {
  MOBISIM_DCHECK(mode < modes_.size());
  return modes_[mode].name;
}

std::string EnergyMeter::Breakdown() const {
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%s=%.1fJ", i == 0 ? "" : " ", modes_[i].name.c_str(),
                  joules_[i]);
    out += buf;
  }
  return out;
}

}  // namespace mobisim
