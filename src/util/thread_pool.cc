#include "src/util/thread_pool.h"

#include <utility>

namespace mobisim {

std::size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = DefaultThreadCount();
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain outstanding jobs even when stopping: jobs may hold references
      // into caller state that Wait()-less shutdown must still complete.
      if (queue_.empty()) {
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

}  // namespace mobisim
