// Lightweight invariant checking for mobisim.
//
// MOBISIM_CHECK is always on (simulation correctness beats nanoseconds here);
// MOBISIM_DCHECK compiles out in NDEBUG builds.  Failures print the condition
// and location then abort, which is the right behaviour for a simulator: a
// violated invariant means every number printed afterwards would be garbage.
#ifndef MOBISIM_SRC_UTIL_CHECK_H_
#define MOBISIM_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mobisim {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "MOBISIM_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace mobisim

#define MOBISIM_CHECK(cond)                                 \
  do {                                                      \
    if (!(cond)) {                                          \
      ::mobisim::CheckFailed(#cond, __FILE__, __LINE__);    \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define MOBISIM_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define MOBISIM_DCHECK(cond) MOBISIM_CHECK(cond)
#endif

#endif  // MOBISIM_SRC_UTIL_CHECK_H_
