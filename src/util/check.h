// Lightweight invariant checking for mobisim.
//
// MOBISIM_CHECK is always on (simulation correctness beats nanoseconds here);
// MOBISIM_DCHECK compiles out in NDEBUG builds.  Failures throw SimError with
// the condition and location: a violated invariant means every number the
// affected simulation would print is garbage, but it must not take down an
// entire multi-hour sweep.  Callers that genuinely cannot continue — test
// binaries and CLI main()s — catch SimError at the top level and abort/exit
// there instead.
#ifndef MOBISIM_SRC_UTIL_CHECK_H_
#define MOBISIM_SRC_UTIL_CHECK_H_

#include <stdexcept>
#include <string>

namespace mobisim {

// Thrown when a MOBISIM_CHECK invariant fails inside library code.  Carries
// the failed condition text and source location so sweep runners can record
// *which* invariant a failed point tripped.
class SimError : public std::runtime_error {
 public:
  SimError(const char* cond, const char* file, int line)
      : std::runtime_error(std::string("MOBISIM_CHECK failed: ") + cond + " at " +
                           file + ":" + std::to_string(line)),
        condition_(cond),
        file_(file),
        line_(line) {}

  const char* condition() const { return condition_; }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  const char* condition_;
  const char* file_;
  int line_;
};

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  throw SimError(cond, file, line);
}

}  // namespace mobisim

#define MOBISIM_CHECK(cond)                                 \
  do {                                                      \
    if (!(cond)) {                                          \
      ::mobisim::CheckFailed(#cond, __FILE__, __LINE__);    \
    }                                                       \
  } while (0)

#ifdef NDEBUG
#define MOBISIM_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define MOBISIM_DCHECK(cond) MOBISIM_CHECK(cond)
#endif

#endif  // MOBISIM_SRC_UTIL_CHECK_H_
