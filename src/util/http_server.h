// Minimal embedded HTTP endpoint for local services.
//
// Deliberately tiny: GET-only HTTP/1.0-style request handling on a loopback
// socket, one background accept thread, one connection served at a time.
// That is exactly what a local sweep service needs for live status — a
// browser or curl can poll it — without pulling in an HTTP library.  The
// server never reads request bodies and closes the connection after every
// response, so a slow or malicious client can stall at most one poll, never
// the service itself (reads carry a short socket timeout).
#ifndef MOBISIM_SRC_UTIL_HTTP_SERVER_H_
#define MOBISIM_SRC_UTIL_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mobisim {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/status" (query string included verbatim)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// 404 with a one-line JSON body; the default for unrouted paths.
HttpResponse HttpNotFound();

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  // the accept thread.  Returns false with `error` set when the socket
  // cannot be created or bound.  The handler runs on the accept thread.
  bool Start(std::uint16_t port, Handler handler, std::string* error);

  // The bound port (useful after Start(0)); 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  // Closes the listening socket and joins the accept thread.  Idempotent.
  void Stop();

 private:
  // Takes the fd by value: the accept thread must never read listen_fd_,
  // which the owning thread overwrites in Stop() without synchronization.
  void AcceptLoop(int listen_fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

// Blocking GET against a local server: fetches `path` from 127.0.0.1:`port`
// and stores the response body.  Returns false with `error` set on connect
// or protocol failure.  `status` (when non-null) receives the HTTP status
// code.  Used by the status CLI and by tests; not a general HTTP client.
bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error, int* status = nullptr);

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HTTP_SERVER_H_
