// Minimal embedded HTTP endpoint for local services.
//
// Deliberately tiny: GET/POST HTTP/1.0-style request handling, one
// background accept thread, one connection served at a time.  That is
// exactly what a sweep service needs — status polls from a browser or curl,
// and the sweepd lease protocol's small POST bodies — without pulling in an
// HTTP library.  The server closes the connection after every response, so
// a slow or malicious client can stall at most one request, never the
// service itself (reads carry a short socket timeout), and hostile input
// (torn request lines, oversized headers, a body on a GET, absurd
// Content-Length values) gets a clean 4xx and a closed socket, never a hang
// or a crash.
//
// The listening socket binds 127.0.0.1 unless the caller explicitly opts
// into all interfaces (`bind_any`) — serving remote sweep workers is a
// deliberate decision, not a default.
#ifndef MOBISIM_SRC_UTIL_HTTP_SERVER_H_
#define MOBISIM_SRC_UTIL_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mobisim {

// Hard limits on what a request may look like.  Status polls are tiny and
// lease-protocol bodies are bounded by shard row counts; anything larger is
// hostile or broken.
constexpr std::size_t kHttpMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kHttpMaxBodyBytes = 16 * 1024 * 1024;

struct HttpRequest {
  std::string method;  // "GET" or "POST" (anything else is rejected early)
  std::string path;    // "/status" (query string included verbatim)
  std::string body;    // POST payload; always empty for GET
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Canned one-line JSON error responses.
HttpResponse HttpNotFound();
HttpResponse HttpError(int status, const std::string& message);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds `port` (0 = kernel-assigned ephemeral port) and starts the accept
  // thread.  Binds 127.0.0.1 unless `bind_any` is true (0.0.0.0 — remote
  // workers can connect; only do this behind an explicit CLI flag).
  // Returns false with `error` set when the socket cannot be created or
  // bound.  The handler runs on the accept thread.
  bool Start(std::uint16_t port, bool bind_any, Handler handler,
             std::string* error);
  bool Start(std::uint16_t port, Handler handler, std::string* error) {
    return Start(port, /*bind_any=*/false, std::move(handler), error);
  }

  // The bound port (useful after Start(0)); 0 when not running.
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  // Closes the listening socket and joins the accept thread.  Idempotent.
  void Stop();

 private:
  // Takes the fd by value: the accept thread must never read listen_fd_,
  // which the owning thread overwrites in Stop() without synchronization.
  void AcceptLoop(int listen_fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

// Blocking GET against a local server: fetches `path` from 127.0.0.1:`port`
// and stores the response body.  Returns false with `error` set on connect
// or protocol failure — including when `timeout_sec` expires, so a hung or
// partitioned server yields an error instead of wedging the caller forever.
// `status` (when non-null) receives the HTTP status code.  Implemented over
// src/util/http_client.h; kept here for the status CLI and tests.
bool HttpGet(std::uint16_t port, const std::string& path, std::string* body,
             std::string* error, int* status = nullptr,
             double timeout_sec = 5.0);

}  // namespace mobisim

#endif  // MOBISIM_SRC_UTIL_HTTP_SERVER_H_
