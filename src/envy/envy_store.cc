#include "src/envy/envy_store.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

namespace {

SegmentManagerConfig MakeSegmentConfig(const EnvyConfig& config) {
  SegmentManagerConfig seg;
  seg.capacity_bytes = config.flash_bytes;
  seg.segment_bytes = config.flash.erase_segment_bytes;
  seg.block_bytes = config.page_bytes;
  seg.separate_cleaning_segment = config.separate_cleaning_segment;
  seg.cleaning_policy = config.policy;
  return seg;
}

}  // namespace

EnvyStore::EnvyStore(const EnvyConfig& config)
    : config_(config),
      segments_(MakeSegmentConfig(config)),
      live_pages_(static_cast<std::uint64_t>(
          config.utilization * static_cast<double>(segments_.total_blocks()))),
      popularity_(static_cast<std::size_t>(std::max<std::uint64_t>(live_pages_, 1)),
                  config.zipf_skew),
      page_perm_rng_(0xe9f1) {
  MOBISIM_CHECK(config.utilization > 0.0 && config.utilization < 1.0);
  // Slack must cover the two active roles (host log + cleaning destination)
  // plus the erased reserve EnsureSpace maintains.
  const std::uint64_t slack_segments = config.separate_cleaning_segment ? 5 : 3;
  MOBISIM_CHECK(live_pages_ + slack_segments * segments_.blocks_per_segment() <=
                segments_.total_blocks());
  segments_.Preload(0, live_pages_);

  buffer_capacity_pages_ = std::max<std::uint64_t>(1, config.sram_bytes / config.page_bytes);
  buffered_page_ids_.reserve(buffer_capacity_pages_);

  const double read_kbps =
      config.flash.internal_read_kbps > 0 ? config.flash.internal_read_kbps
                                          : config.flash.read_kbps;
  const double write_kbps =
      config.flash.internal_write_kbps > 0 ? config.flash.internal_write_kbps
                                           : config.flash.write_kbps;
  page_read_us_ = TransferTimeUs(config.page_bytes, read_kbps);
  page_write_us_ = TransferTimeUs(config.page_bytes, write_kbps);
  sram_page_us_ = TransferTimeUs(config.page_bytes, config.sram.write_kbps);
  erase_us_ = UsFromMs(config.flash.erase_ms_per_segment);
}

double EnvyStore::cleaning_time_fraction() const {
  return now_ == 0 ? 0.0 : static_cast<double>(cleaning_us_) / static_cast<double>(now_);
}

double EnvyStore::io_time_fraction() const {
  return now_ == 0 ? 0.0 : static_cast<double>(io_us_) / static_cast<double>(now_);
}

double EnvyStore::tps() const {
  return now_ == 0 ? 0.0
                   : static_cast<double>(transactions_) / SecFromUs(now_);
}

void EnvyStore::EnsureSpace(std::uint64_t pages) {
  // Keep enough fully-erased segments for this flush plus the two active
  // roles (host log and cleaning destination).
  const std::uint64_t needed_segments =
      2 + pages / segments_.blocks_per_segment() + 1;
  while (segments_.erased_segment_count() < needed_segments) {
    const std::uint32_t victim = segments_.PickVictim();
    MOBISIM_CHECK(victim != SegmentManager::kNoSegment && "eNVy store wedged (full)");
    MOBISIM_CHECK(segments_.free_slots() >= segments_.VictimLiveBlocks(victim));
    const std::uint32_t copied = segments_.CleanSegment(victim);
    copies_ += copied;
    ++erases_;
    const SimTime cost =
        static_cast<SimTime>(copied) * (page_read_us_ + page_write_us_) + erase_us_;
    cleaning_us_ += cost;
    now_ += cost;
  }
}

void EnvyStore::FlushBuffer() {
  EnsureSpace(buffered_page_ids_.size());
  for (const std::uint64_t page : buffered_page_ids_) {
    segments_.WriteBlock(page);
    now_ += page_write_us_;
    io_us_ += page_write_us_;
  }
  buffered_page_ids_.clear();
  buffered_pages_ = 0;
}

void EnvyStore::WritePage(std::uint64_t page) {
  // Writes land in battery-backed SRAM (copy-on-write front buffer).
  now_ += sram_page_us_;
  io_us_ += sram_page_us_;
  buffered_page_ids_.push_back(page);
  if (++buffered_pages_ >= buffer_capacity_pages_) {
    FlushBuffer();
  }
}

SimTime EnvyStore::Transaction(Rng& rng, int page_reads, int page_writes) {
  const SimTime start = now_;
  for (int i = 0; i < page_reads; ++i) {
    (void)popularity_.Sample(rng);  // page identity does not affect read cost
    now_ += page_read_us_;
    io_us_ += page_read_us_;
  }
  for (int i = 0; i < page_writes; ++i) {
    WritePage(static_cast<std::uint64_t>(popularity_.Sample(rng)));
  }
  ++transactions_;
  return now_ - start;
}

}  // namespace mobisim
