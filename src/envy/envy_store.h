// eNVy-style non-volatile main-memory storage system.
//
// Section 6 of the paper discusses Wu & Zwaenepoel's eNVy: a large
// byte-addressable flash store fronted by battery-backed SRAM, using
// copy-on-write page remapping and cleaning, driven by a TPC-A-like
// transaction workload.  Their headline numbers: at 80% utilization the
// system spends ~45% of its time erasing or copying, and performance
// degrades severely at higher utilizations.
//
// This module reproduces that architecture at our simulator's level of
// abstraction: a closed-loop transaction engine over a page-mapped flash
// array (SegmentManager underneath) with an SRAM write buffer that absorbs
// page writes and flushes them out-of-place in batches.
#ifndef MOBISIM_SRC_ENVY_ENVY_STORE_H_
#define MOBISIM_SRC_ENVY_ENVY_STORE_H_

#include <cstdint>

#include "src/device/device_catalog.h"
#include "src/device/device_spec.h"
#include "src/flash/segment_manager.h"
#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace mobisim {

struct EnvyConfig {
  // eNVy is built from newer parts than the OmniBook's card; the Series 2+
  // (300-ms erases) is the closest catalog entry.
  DeviceSpec flash = IntelSeries2PlusDatasheet();
  MemorySpec sram = NecSramSpec();
  std::uint64_t flash_bytes = 32ull * 1024 * 1024;
  std::uint32_t page_bytes = 1024;
  // Battery-backed write buffer; flushed to flash when full.
  std::uint64_t sram_bytes = 256 * 1024;
  // Fraction of flash pages holding live data.
  double utilization = 0.80;
  // eNVy's hybrid cleaner weighs utilization and locality; cost-benefit plus
  // a segregated cleaning destination is the closest of our mechanisms.
  CleaningPolicy policy = CleaningPolicy::kCostBenefit;
  bool separate_cleaning_segment = true;
  // Skew of page popularity (TPC-A traffic concentrates on hot branch and
  // teller records).
  double zipf_skew = 1.0;
};

class EnvyStore {
 public:
  explicit EnvyStore(const EnvyConfig& config);

  // Executes one closed-loop transaction (`page_reads` random page reads and
  // `page_writes` random page writes, TPC-A-shaped by default) and returns
  // its duration.  The store's internal clock advances accordingly.
  SimTime Transaction(Rng& rng, int page_reads = 3, int page_writes = 3);

  SimTime now() const { return now_; }
  // Fraction of elapsed time spent copying live data or erasing segments.
  double cleaning_time_fraction() const;
  double io_time_fraction() const;
  std::uint64_t transactions() const { return transactions_; }
  // Sustained throughput so far, transactions per second.
  double tps() const;
  std::uint64_t segment_erases() const { return erases_; }
  std::uint64_t pages_copied() const { return copies_; }
  const SegmentManager& segments() const { return segments_; }

 private:
  void WritePage(std::uint64_t page);
  void FlushBuffer();
  // Makes room for `pages` flash appends, cleaning as needed (on demand,
  // charged to the flush that needs it).
  void EnsureSpace(std::uint64_t pages);

  EnvyConfig config_;
  SegmentManager segments_;
  std::uint64_t live_pages_;
  ZipfDistribution popularity_;
  Rng page_perm_rng_;

  SimTime now_ = 0;
  SimTime cleaning_us_ = 0;
  SimTime io_us_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t erases_ = 0;
  std::uint64_t copies_ = 0;

  // SRAM write buffer state: count of buffered dirty pages (identities do
  // not matter for timing; duplicates are rare under uniform traffic).
  std::uint64_t buffered_pages_ = 0;
  std::uint64_t buffer_capacity_pages_;
  std::vector<std::uint64_t> buffered_page_ids_;

  SimTime page_read_us_;
  SimTime page_write_us_;
  SimTime sram_page_us_;
  SimTime erase_us_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_ENVY_ENVY_STORE_H_
