// Deterministic fault injection for mobisim.
//
// The paper's headline numbers — 100k-cycle flash endurance, battery-backed
// SRAM that survives power loss while DRAM does not, asynchronous erasure —
// are all failure-adjacent behaviours.  This library turns them into
// experiments: a seed-driven FaultPlan schedules power-loss events, devices
// draw transient read/write errors from a FaultInjector, and flash erase
// blocks carry sampled wear-out budgets around the datasheet endurance.
//
// Everything here is pure state driven by the per-simulation PCG32 streams
// below; with all FaultConfig knobs at their defaults no random draw is ever
// made and the whole layer is a strict no-op (existing outputs stay
// byte-identical).
#ifndef MOBISIM_SRC_FAULT_FAULT_H_
#define MOBISIM_SRC_FAULT_FAULT_H_

#include <cstdint>

#include "src/util/rng.h"
#include "src/util/sim_time.h"

namespace mobisim {

// Fixed PCG32 stream selectors so the power-loss schedule, transient errors,
// wear budgets, and factory bad blocks never share a draw sequence (adding a
// transient error must not move the next power loss).
namespace fault_streams {
constexpr std::uint64_t kPowerLoss = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kTransient = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kWearBudget = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kBadBlocks = 0x27d4eb2f165667c5ULL;
}  // namespace fault_streams

// All fault knobs, settable from config text (`fault.*` keys) and spec files.
// Defaults model perfectly healthy hardware.
struct FaultConfig {
  // Seed for every fault stream (independent of the workload seed so the same
  // trace can be replayed under different fault schedules).
  std::uint64_t seed = 1;

  // Mean interval between power-loss events (exponential inter-arrival).
  // 0 disables power loss.
  SimTime power_loss_interval_us = 0;

  // Probability that any single device read/write attempt fails transiently.
  // Failed attempts cost full time and energy but change no device state.
  double transient_error_rate = 0.0;

  // Probability that each flash erase block is bad out of the factory.
  double bad_block_rate = 0.0;

  // When true, each flash erase block gets a wear budget sampled from
  // Normal(endurance_cycles * endurance_scale, mean * endurance_spread);
  // a block whose erase count reaches its budget retires (bad-block
  // remapping relocates surviving live data and capacity degrades).
  bool wear_out = false;
  double endurance_scale = 1.0;
  double endurance_spread = 0.1;

  // Bounded retry-with-backoff for transient errors in the storage system.
  // Each retry re-pays the device operation; attempt k additionally waits
  // retry_backoff_us * 2^(k-1) of simulated time.
  std::uint32_t max_retries = 3;
  SimTime retry_backoff_us = 500;

  // Export-only flag: when set, fault metrics columns are emitted even for
  // points whose knobs are all default.  The sweep runner sets this uniformly
  // across a grid that sweeps any fault dimension so every row shares one
  // schema.  Not a fault switch and excluded from enabled().
  bool export_metrics = false;

  // True when any fault mechanism can actually fire.
  bool enabled() const {
    return power_loss_interval_us > 0 || transient_error_rate > 0.0 ||
           bad_block_rate > 0.0 || wear_out;
  }
};

// Status of a single device I/O attempt.
enum class IoStatus {
  kOk = 0,
  kTransientError,  // retryable: media glitch, the attempt changed nothing
  kFatalError,      // not retryable (reserved; nothing emits it today)
};

// Result of a single device I/O attempt: how long the attempt occupied the
// device (retries re-pay this) and whether it succeeded.
struct IoResult {
  SimTime time_us = 0;
  IoStatus status = IoStatus::kOk;

  bool ok() const { return status == IoStatus::kOk; }
};

// Per-device source of transient errors.  One Bernoulli draw per attempted
// I/O; makes zero draws when the rate is zero so healthy devices stay
// byte-identical to builds without fault injection.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : rate_(config.transient_error_rate),
        rng_(config.seed, fault_streams::kTransient) {}

  // True when the next I/O attempt should fail transiently.
  bool NextError() {
    if (rate_ <= 0.0) {
      return false;
    }
    return rng_.Chance(rate_);
  }

 private:
  double rate_;
  Rng rng_;
};

// Power-loss schedule: exponential inter-arrival times with the configured
// mean, drawn from a dedicated stream.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& config)
      : mean_us_(config.power_loss_interval_us),
        rng_(config.seed, fault_streams::kPowerLoss) {}

  bool power_loss_enabled() const { return mean_us_ > 0; }

  // Time until the next power loss (>= 1us so the schedule always advances).
  SimTime NextInterval() {
    const double draw = rng_.Exponential(static_cast<double>(mean_us_));
    const SimTime interval = static_cast<SimTime>(draw);
    return interval > 0 ? interval : 1;
  }

 private:
  SimTime mean_us_;
  Rng rng_;
};

// Recovery bookkeeping accumulated by the storage system across a run.
struct FaultStats {
  std::uint64_t power_losses = 0;
  // Host write blocks acknowledged but not yet durable (and not battery
  // backed) when power failed.
  std::uint64_t lost_acked_blocks = 0;
  std::uint64_t io_retries = 0;
  // Operations dropped after exhausting max_retries.
  std::uint64_t io_failures = 0;
  SimTime recovery_time_us = 0;
  double recovery_energy_j = 0.0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_FAULT_FAULT_H_
