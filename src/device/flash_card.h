// Byte-accessed flash memory card (Intel Series 2 class).
//
// Writes are out-of-place into a log of erase segments managed by
// SegmentManager.  A cleaner reclaims the lowest-utilization segment by
// copying its live blocks into the active segment and erasing it; erasure
// takes a fixed time per segment (1.6 s for the Series 2) regardless of how
// much data it reclaims.  Cleaning runs in the background during idle time
// and is suspended while the host performs I/O (section 4.2); a host write
// that finds no erased space stalls until the in-progress cleaning finishes.
//
// In on-demand mode (DeviceOptions::background_cleaning == false) the
// cleaner only runs, synchronously, when a write exhausts the free-space
// reserve.
#ifndef MOBISIM_SRC_DEVICE_FLASH_CARD_H_
#define MOBISIM_SRC_DEVICE_FLASH_CARD_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/device/storage_device.h"
#include "src/flash/ftl_policy.h"
#include "src/flash/segment_manager.h"

namespace mobisim {

class FlashCard : public StorageDevice {
 public:
  FlashCard(const DeviceSpec& spec, const DeviceOptions& options);

  // Preloads the card to `utilization` (fraction of capacity holding live
  // data): the first `trace_blocks` LBAs (the workload's address space) plus
  // enough never-accessed filler blocks.  With `interleave` the filler is
  // spread among the workload blocks so cleaned segments carry cold data,
  // which is the effect the paper attributes to high utilization; otherwise
  // the filler packs into its own (never-cleaned) segments.
  void Preload(std::uint64_t trace_blocks, double utilization, bool interleave = true);

  void AdvanceTo(SimTime now) override;
  IoResult ReadOp(SimTime now, const BlockRecord& rec) override;
  IoResult WriteOp(SimTime now, const BlockRecord& rec) override;
  SimTime PowerLoss(SimTime now) override;
  void Trim(SimTime now, const BlockRecord& rec) override;
  void Finish(SimTime end) override;

  const EnergyMeter& energy() const override { return meter_; }
  const DeviceCounters& counters() const override;
  const DeviceSpec& spec() const override { return spec_; }
  SimTime busy_until() const override { return busy_until_; }

  const SegmentManager& segments() const { return segments_; }
  const FtlPolicy& ftl_policy() const { return *policy_; }

  // Usable-capacity timeline: one (time, usable fraction of physical
  // capacity) entry per capacity-losing event (factory bad blocks at time 0,
  // wear-out retirements as they happen).  Empty on a healthy card.
  const std::vector<std::pair<SimTime, double>>& capacity_events() const {
    return capacity_events_;
  }

 private:
  enum Mode : std::size_t { kModeRead = 0, kModeWrite, kModeErase, kModeClean, kModeIdle };

  struct CleanJob {
    bool active = false;
    std::uint32_t victim = SegmentManager::kNoSegment;
    SimTime copy_remaining_us = 0;
    SimTime erase_remaining_us = 0;
    std::uint32_t reserved_slots = 0;
  };

  // Free slots a host write may consume right now (free minus the cleaner's
  // copy reservation).
  std::uint64_t AvailableSlots() const;
  // Whether a one-block host write can proceed without waiting: it needs an
  // available slot and either room in the active segment or an erased
  // segment the cleaner does not need (section 4.2's single-active-segment
  // write discipline -- the source of high-utilization write stalls).
  bool CanAcceptHostBlock() const;
  // Starts a cleaning job if the erased-segment reserve is low and a victim
  // exists.  Returns true if a job is (now) active.
  bool MaybeStartCleanJob();
  // Runs the active job to completion immediately, accounting its energy;
  // returns the time it consumed.
  SimTime FinishCleanJobNow();
  // Applies the job's state transition.
  void CompleteCleanJob();
  void AccountUntil(SimTime t);
  SimTime ServiceRead(SimTime now, const BlockRecord& rec);
  SimTime ServiceWrite(SimTime now, const BlockRecord& rec);
  // Time/energy of a write attempt that fails before committing any block.
  SimTime FailedWrite(SimTime now, const BlockRecord& rec);
  double UsableFraction() const;

  DeviceSpec spec_;
  DeviceOptions options_;
  EnergyMeter meter_;
  mutable DeviceCounters counters_;
  // Declared before segments_: the manager scores victims through the
  // policy, so the policy must be constructed first and outlive it.
  std::unique_ptr<FtlPolicy> policy_;
  // True for policies with placement/read hooks (page-diff, fat-remap).  The
  // log-structured default skips every hook call so the hot path — and its
  // floating-point arithmetic — is the pre-FtlPolicy code, byte for byte.
  bool ftl_hooks_ = false;
  SegmentManager segments_;
  CleanJob job_;
  FaultInjector injector_;

  SimTime accounted_until_ = 0;
  SimTime busy_until_ = 0;
  std::uint32_t last_file_ = ~std::uint32_t{0};
  double internal_read_kbps_ = 0.0;  // rate for policy merge reads
  SimTime block_copy_us_;   // read+write one block during cleaning
  SimTime erase_us_;        // fixed per-segment erase time
  SimTime mount_scan_us_;   // reboot pass: read one summary block per segment
  std::vector<std::pair<SimTime, double>> capacity_events_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_FLASH_CARD_H_
