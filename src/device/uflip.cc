#include "src/device/uflip.h"

#include <algorithm>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mobisim {

const char* UflipPatternName(UflipPattern pattern) {
  switch (pattern) {
    case UflipPattern::kSequentialRead:
      return "seq-read";
    case UflipPattern::kRandomRead:
      return "rand-read";
    case UflipPattern::kStridedRead:
      return "stride-read";
    case UflipPattern::kSequentialWrite:
      return "seq-write";
    case UflipPattern::kRandomWrite:
      return "rand-write";
    case UflipPattern::kStridedWrite:
      return "stride-write";
    case UflipPattern::kPartitionedWrite:
      return "part-write";
  }
  MOBISIM_CHECK(false && "UflipPatternName: corrupt UflipPattern value");
}

namespace {

bool IsRead(UflipPattern pattern) {
  return pattern == UflipPattern::kSequentialRead ||
         pattern == UflipPattern::kRandomRead ||
         pattern == UflipPattern::kStridedRead;
}

}  // namespace

UflipStats RunUflipPattern(StorageDevice& device, UflipPattern pattern,
                           const UflipParams& params, SimTime start_us) {
  MOBISIM_CHECK(params.ops > 0);
  MOBISIM_CHECK(params.blocks_per_op > 0);
  MOBISIM_CHECK(params.region_blocks >= params.blocks_per_op);
  MOBISIM_CHECK(params.partitions > 0);

  // Requests are aligned to their own size so random/partitioned runs touch
  // the same working set as sequential ones.
  const std::uint64_t slots = params.region_blocks / params.blocks_per_op;
  MOBISIM_CHECK(slots > 0);
  Rng rng(params.seed, /*stream=*/0x75666c6970ULL);  // "uflip"

  const bool is_read = IsRead(pattern);
  std::uint64_t seq_slot = 0;
  std::vector<std::uint64_t> partition_cursor(params.partitions, 0);
  const std::uint64_t slots_per_partition =
      std::max<std::uint64_t>(1, slots / params.partitions);

  UflipStats stats;
  SimTime now = start_us;
  for (std::uint64_t i = 0; i < params.ops; ++i) {
    BlockRecord rec;
    rec.time_us = now;
    rec.op = is_read ? OpType::kRead : OpType::kWrite;
    rec.block_count = params.blocks_per_op;
    switch (pattern) {
      case UflipPattern::kSequentialRead:
      case UflipPattern::kSequentialWrite:
        rec.lba = (seq_slot % slots) * params.blocks_per_op;
        rec.file_id = 0;  // locality preserved: the no-seek path applies
        ++seq_slot;
        break;
      case UflipPattern::kRandomRead:
      case UflipPattern::kRandomWrite:
        rec.lba = static_cast<std::uint64_t>(
                      rng.UniformInt(0, static_cast<std::int64_t>(slots) - 1)) *
                  params.blocks_per_op;
        // Each request lands "elsewhere": charge the random-access overhead.
        rec.file_id = static_cast<std::uint32_t>(i % 2 + 1);
        break;
      case UflipPattern::kStridedRead:
      case UflipPattern::kStridedWrite: {
        const std::uint64_t stride_slots =
            std::max<std::uint64_t>(1, params.stride_blocks / params.blocks_per_op);
        rec.lba = ((seq_slot * (1 + stride_slots)) % slots) * params.blocks_per_op;
        rec.file_id = static_cast<std::uint32_t>(i % 2 + 1);
        ++seq_slot;
        break;
      }
      case UflipPattern::kPartitionedWrite: {
        const std::uint32_t part = static_cast<std::uint32_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(params.partitions) - 1));
        const std::uint64_t base = static_cast<std::uint64_t>(part) * slots_per_partition;
        const std::uint64_t slot =
            base + (partition_cursor[part]++ % slots_per_partition);
        rec.lba = (slot % slots) * params.blocks_per_op;
        // Within a partition the stream is sequential; switching partitions
        // breaks locality.
        rec.file_id = part + 1;
        break;
      }
    }

    const SimTime response =
        is_read ? device.Read(now, rec) : device.Write(now, rec);
    MOBISIM_CHECK(response >= 0);
    stats.mean_response_us += static_cast<double>(response);
    stats.max_response_us = std::max(stats.max_response_us, response);
    stats.bytes += static_cast<std::uint64_t>(rec.block_count) * params.block_bytes;
    ++stats.ops;
    // Closed loop: the next request issues when this one completes (plus any
    // configured think time).
    now += response + params.pause_us;
  }
  device.Finish(now);
  stats.elapsed_us = now - start_us;
  stats.mean_response_us /= static_cast<double>(stats.ops);
  if (stats.elapsed_us > 0) {
    stats.throughput_kbps = static_cast<double>(stats.bytes) /
                            (static_cast<double>(stats.elapsed_us) / 1.0e6) / 1024.0;
  }
  return stats;
}

}  // namespace mobisim
