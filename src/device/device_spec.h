// Parameter blocks describing storage devices and memory chips.
//
// Two sets of numbers exist for most devices, exactly as in the paper: the
// "measured" set derived from the OmniBook micro-benchmarks (Table 1) and the
// "datasheet" set from manufacturer specifications (Table 2).  The catalog
// (device_catalog.h) provides both.
#ifndef MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_
#define MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_

#include <cstdint>
#include <string>

namespace mobisim {

enum class DeviceKind : std::uint8_t {
  kMagneticDisk = 0,
  kFlashDisk = 1,   // block-interface flash disk emulator (SunDisk SDP)
  kFlashCard = 2,   // byte-interface flash memory card (Intel Series 2)
  kNandSsd = 3,     // parameterized multi-channel NAND SSD (Olivier et al.)
};

const char* DeviceKindName(DeviceKind kind);

// Channel/die/plane topology and raw NAND cell timings for kNandSsd devices
// (unified performance-and-power model in the spirit of Olivier/Boukhobza/
// Senn).  A parallel unit is one plane; units = channels * dies_per_channel *
// planes_per_die.  Page program/read and block erase are asymmetric cell
// operations; page transfers serialize on the owning channel's bus.
struct NandTopology {
  std::uint32_t channels = 0;        // 0 marks a non-NAND spec
  std::uint32_t dies_per_channel = 1;
  std::uint32_t planes_per_die = 1;
  std::uint32_t page_bytes = 2048;
  std::uint32_t pages_per_block = 64;  // erase block = page_bytes * pages_per_block
  double read_page_us = 25.0;     // cell-to-register read (tR)
  double program_page_us = 200.0; // register-to-cell program (tPROG)
  double erase_block_ms = 1.5;    // whole-block erase (tBERS)
  double channel_mbps = 40.0;     // per-channel bus bandwidth, Mbytes/s

  std::uint32_t units() const {
    return channels * dies_per_channel * planes_per_die;
  }
  std::uint32_t block_bytes() const { return page_bytes * pages_per_block; }
};

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kMagneticDisk;

  // -- Timing ---------------------------------------------------------------
  // Per-operation overhead for a random access (controller + seek +
  // rotational latency for disks, controller latency for flash).
  double read_overhead_ms = 0.0;
  double write_overhead_ms = 0.0;
  // Overhead when the access goes to the same file as the previous one (the
  // paper's no-seek assumption); disks still pay rotational latency.
  double sequential_overhead_ms = 0.0;
  // Transfer bandwidth in Kbytes/s, as seen by the host (for "measured"
  // specs this folds in DOS/MFFS software overheads).
  double read_kbps = 0.0;
  double write_kbps = 0.0;
  // Raw medium bandwidth used for device-internal traffic (flash-card
  // cleaning copies).  Zero means same as the host-visible rate.
  double internal_read_kbps = 0.0;
  double internal_write_kbps = 0.0;

  // -- Magnetic-disk spin behaviour ------------------------------------------
  double spinup_ms = 0.0;

  // -- Flash erase behaviour --------------------------------------------------
  // Erase unit: 512 bytes for the SunDisk flash disks, 64-128 Kbytes for the
  // Intel flash card.
  std::uint32_t erase_segment_bytes = 0;
  // Fixed per-segment erase time (Intel card: 1.6 s regardless of size).
  double erase_ms_per_segment = 0.0;
  // Decoupled-erasure bandwidth (SunDisk SDP5A: 150 Kbytes/s).
  double erase_kbps = 0.0;
  // Write bandwidth into pre-erased areas (SDP5A: 400 Kbytes/s).  Zero means
  // the device cannot exploit pre-erasure and `write_kbps` (which includes
  // the coupled erase) always applies.
  double pre_erased_write_kbps = 0.0;
  // Guaranteed erase cycles per unit before wear-out (10^5 for the parts the
  // paper studied; 10^6 for the Series 2+).
  std::uint32_t endurance_cycles = 100000;

  // -- Power (watts) ----------------------------------------------------------
  double read_w = 0.0;
  double write_w = 0.0;
  double erase_w = 0.0;
  double idle_w = 0.0;    // spinning but not transferring (disk); powered (flash)
  double sleep_w = 0.0;   // spun down (disk only)
  double spinup_w = 0.0;

  // -- NAND topology (kNandSsd only; nand.channels == 0 otherwise) -----------
  NandTopology nand;
};

// DRAM buffer cache or battery-backed SRAM write buffer chip family.
struct MemorySpec {
  std::string name;
  double read_kbps = 0.0;
  double write_kbps = 0.0;
  double access_overhead_us = 0.0;
  // Power while actively transferring.
  double active_w = 0.0;
  // Background (refresh / data-retention) power per Mbyte of configured
  // capacity; DRAM pays this continuously, which is why "more DRAM" is not
  // free energy-wise (section 5.4).
  double idle_w_per_mbyte = 0.0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_
