// Parameter blocks describing storage devices and memory chips.
//
// Two sets of numbers exist for most devices, exactly as in the paper: the
// "measured" set derived from the OmniBook micro-benchmarks (Table 1) and the
// "datasheet" set from manufacturer specifications (Table 2).  The catalog
// (device_catalog.h) provides both.
#ifndef MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_
#define MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_

#include <cstdint>
#include <string>

namespace mobisim {

enum class DeviceKind : std::uint8_t {
  kMagneticDisk = 0,
  kFlashDisk = 1,   // block-interface flash disk emulator (SunDisk SDP)
  kFlashCard = 2,   // byte-interface flash memory card (Intel Series 2)
};

const char* DeviceKindName(DeviceKind kind);

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kMagneticDisk;

  // -- Timing ---------------------------------------------------------------
  // Per-operation overhead for a random access (controller + seek +
  // rotational latency for disks, controller latency for flash).
  double read_overhead_ms = 0.0;
  double write_overhead_ms = 0.0;
  // Overhead when the access goes to the same file as the previous one (the
  // paper's no-seek assumption); disks still pay rotational latency.
  double sequential_overhead_ms = 0.0;
  // Transfer bandwidth in Kbytes/s, as seen by the host (for "measured"
  // specs this folds in DOS/MFFS software overheads).
  double read_kbps = 0.0;
  double write_kbps = 0.0;
  // Raw medium bandwidth used for device-internal traffic (flash-card
  // cleaning copies).  Zero means same as the host-visible rate.
  double internal_read_kbps = 0.0;
  double internal_write_kbps = 0.0;

  // -- Magnetic-disk spin behaviour ------------------------------------------
  double spinup_ms = 0.0;

  // -- Flash erase behaviour --------------------------------------------------
  // Erase unit: 512 bytes for the SunDisk flash disks, 64-128 Kbytes for the
  // Intel flash card.
  std::uint32_t erase_segment_bytes = 0;
  // Fixed per-segment erase time (Intel card: 1.6 s regardless of size).
  double erase_ms_per_segment = 0.0;
  // Decoupled-erasure bandwidth (SunDisk SDP5A: 150 Kbytes/s).
  double erase_kbps = 0.0;
  // Write bandwidth into pre-erased areas (SDP5A: 400 Kbytes/s).  Zero means
  // the device cannot exploit pre-erasure and `write_kbps` (which includes
  // the coupled erase) always applies.
  double pre_erased_write_kbps = 0.0;
  // Guaranteed erase cycles per unit before wear-out (10^5 for the parts the
  // paper studied; 10^6 for the Series 2+).
  std::uint32_t endurance_cycles = 100000;

  // -- Power (watts) ----------------------------------------------------------
  double read_w = 0.0;
  double write_w = 0.0;
  double erase_w = 0.0;
  double idle_w = 0.0;    // spinning but not transferring (disk); powered (flash)
  double sleep_w = 0.0;   // spun down (disk only)
  double spinup_w = 0.0;
};

// DRAM buffer cache or battery-backed SRAM write buffer chip family.
struct MemorySpec {
  std::string name;
  double read_kbps = 0.0;
  double write_kbps = 0.0;
  double access_overhead_us = 0.0;
  // Power while actively transferring.
  double active_w = 0.0;
  // Background (refresh / data-retention) power per Mbyte of configured
  // capacity; DRAM pays this continuously, which is why "more DRAM" is not
  // free energy-wise (section 5.4).
  double idle_w_per_mbyte = 0.0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_DEVICE_SPEC_H_
