// uFLIP micro-pattern runner (Bouganim/Jonsson/Bonnet).
//
// uFLIP validates a flash device model the way the original benchmark
// validated real devices: submit canonical IO patterns -- sequential, random,
// and strided reads/writes, a request-granularity sweep, and partitioned
// random writes -- and check the response-time *shapes*, not absolute
// numbers: random writes cost more than sequential writes, sub-page requests
// cost the same as one page (the granularity knee), and striped throughput
// saturates with channel count.
//
// The runner drives any StorageDevice closed-loop (each request issues when
// the previous one completes) so the same patterns also run against the 1994
// catalog for cross-device comparisons.  bench_uflip and the unit tests
// share this code: the bench emits the measured curves, the tests assert the
// shapes.
#ifndef MOBISIM_SRC_DEVICE_UFLIP_H_
#define MOBISIM_SRC_DEVICE_UFLIP_H_

#include <cstdint>

#include "src/device/storage_device.h"
#include "src/util/sim_time.h"

namespace mobisim {

enum class UflipPattern : std::uint8_t {
  kSequentialRead = 0,
  kRandomRead,
  kStridedRead,
  kSequentialWrite,
  kRandomWrite,
  kStridedWrite,
  // Random choice among `partitions` sequential cursors (uFLIP's
  // partitioning pattern: degrades from sequential toward random as the
  // partition count grows).
  kPartitionedWrite,
};

const char* UflipPatternName(UflipPattern pattern);

struct UflipParams {
  std::uint64_t ops = 256;           // requests per run
  std::uint32_t blocks_per_op = 4;   // request size, logical blocks
  // Address window [0, region_blocks) the pattern runs over; must be
  // preloaded (mapped) on log-structured devices.
  std::uint64_t region_blocks = 1024;
  std::uint32_t stride_blocks = 64;  // gap between strided requests
  std::uint32_t partitions = 4;      // cursors for kPartitionedWrite
  // Idle gap between requests on top of the closed loop (0 = saturated).
  SimTime pause_us = 0;
  std::uint64_t seed = 42;
  // Logical block size the device was built with (DeviceOptions::block_bytes);
  // only used to report byte counts and throughput.
  std::uint32_t block_bytes = 1024;
};

struct UflipStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  SimTime elapsed_us = 0;        // first issue to last completion, pauses included
  double mean_response_us = 0.0;
  SimTime max_response_us = 0;
  double throughput_kbps = 0.0;  // bytes / elapsed (0 when elapsed == 0)
};

// Runs `params.ops` requests of `pattern` against `device` starting at
// `start_us` and returns the aggregate response statistics.  The device's
// state advances; run patterns on a fresh device (or deliberately reuse one
// to study history effects, as uFLIP does).
UflipStats RunUflipPattern(StorageDevice& device, UflipPattern pattern,
                           const UflipParams& params, SimTime start_us = 0);

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_UFLIP_H_
