// Parameterized multi-channel NAND SSD (DeviceKind::kNandSsd).
//
// The timing model follows the unified NAND performance-and-power approach of
// Olivier/Boukhobza/Senn: an explicit channel/die/plane topology whose
// parallel units (planes) each execute asymmetric cell operations -- page
// read (tR), page program (tPROG), block erase (tBERS) -- while page payloads
// serialize on the owning channel's bus.  Host requests are striped
// page-by-page round-robin across the units (consecutive pages land on
// distinct channels), each unit and each channel keeps its own `busy_until`
// queue, and a request completes when its last page does.  Commands pipeline:
// a write releases the controller once its payload has shipped over the bus,
// so queued writes overlap their programs across dies -- which is where
// throughput scaling with channel count (and its saturation, uFLIP's
// parallelism pattern) comes from.
//
// Mapping and cleaning reuse the flash-card machinery unchanged: a
// SegmentManager whose segment is the NAND erase block, the FtlPolicy hook
// suite, and the background/on-demand CleanJob discipline.  The random-write
// penalty and high-utilization stalls therefore emerge from the same
// mechanism the paper models, just with SSD-class constants.
#ifndef MOBISIM_SRC_DEVICE_NAND_SSD_H_
#define MOBISIM_SRC_DEVICE_NAND_SSD_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/device/storage_device.h"
#include "src/flash/ftl_policy.h"
#include "src/flash/segment_manager.h"

namespace mobisim {

class NandSsd : public StorageDevice {
 public:
  NandSsd(const DeviceSpec& spec, const DeviceOptions& options);

  // Same preload contract as FlashCard: fills the device to `utilization`
  // of usable capacity with the first `trace_blocks` LBAs plus filler,
  // interleaved by default so cleaned segments carry cold data.
  void Preload(std::uint64_t trace_blocks, double utilization, bool interleave = true);

  void AdvanceTo(SimTime now) override;
  IoResult ReadOp(SimTime now, const BlockRecord& rec) override;
  IoResult WriteOp(SimTime now, const BlockRecord& rec) override;
  SimTime PowerLoss(SimTime now) override;
  void Trim(SimTime now, const BlockRecord& rec) override;
  void Finish(SimTime end) override;

  const EnergyMeter& energy() const override { return meter_; }
  const DeviceCounters& counters() const override;
  const DeviceSpec& spec() const override { return spec_; }
  SimTime busy_until() const override { return busy_until_; }

  const SegmentManager& segments() const { return segments_; }
  const FtlPolicy& ftl_policy() const { return *policy_; }

  // Usable-capacity timeline, as on FlashCard: one (time, usable fraction)
  // entry per capacity-losing event.  Empty on a healthy device.
  const std::vector<std::pair<SimTime, double>>& capacity_events() const {
    return capacity_events_;
  }

  // -- Striping arithmetic (exposed for unit tests) -------------------------
  std::uint32_t units() const { return units_; }
  std::uint32_t channels() const { return channels_; }
  std::uint32_t ChannelOf(std::uint32_t unit) const { return unit % channels_; }
  // Pages a host transfer of `bytes` occupies (>= 1: sub-page writes still
  // program a whole page -- uFLIP's granularity knee).
  std::uint64_t PagesForBytes(std::uint64_t bytes) const;
  // Unit indices the next `pages`-page request would stripe to, in issue
  // order, without advancing the cursor.
  std::vector<std::uint32_t> StripeUnits(std::uint64_t pages) const;

 private:
  enum Mode : std::size_t { kModeRead = 0, kModeWrite, kModeErase, kModeClean, kModeIdle };

  struct CleanJob {
    bool active = false;
    std::uint32_t victim = SegmentManager::kNoSegment;
    SimTime copy_remaining_us = 0;
    SimTime erase_remaining_us = 0;
    std::uint32_t reserved_slots = 0;
  };

  std::uint64_t AvailableSlots() const;
  bool CanAcceptHostBlock() const;
  bool MaybeStartCleanJob();
  SimTime FinishCleanJobNow();
  void CompleteCleanJob();
  void AccountUntil(SimTime t);
  // Issues `pages` page operations starting no earlier than `issue`, striped
  // from the cursor; returns the completion time of the last page and
  // advances the cursor, unit/channel queues, and the energy meter.
  SimTime IssuePages(SimTime issue, std::uint64_t pages, bool is_read);
  SimTime ServiceRead(SimTime now, const BlockRecord& rec);
  SimTime ServiceWrite(SimTime now, const BlockRecord& rec);
  SimTime FailedWrite(SimTime now, const BlockRecord& rec);
  double UsableFraction() const;

  DeviceSpec spec_;
  DeviceOptions options_;
  EnergyMeter meter_;
  mutable DeviceCounters counters_;
  // Declared before segments_: the manager scores victims through the
  // policy, so the policy must be constructed first and outlive it.
  std::unique_ptr<FtlPolicy> policy_;
  bool ftl_hooks_ = false;
  SegmentManager segments_;
  CleanJob job_;
  FaultInjector injector_;

  // Topology, fixed at construction.
  std::uint32_t channels_ = 1;
  std::uint32_t units_ = 1;
  std::uint32_t page_bytes_ = 1;
  SimTime read_page_us_ = 0;     // tR
  SimTime program_page_us_ = 0;  // tPROG
  SimTime page_xfer_us_ = 0;     // one page over the channel bus
  SimTime block_copy_us_ = 0;    // internal copy of one logical block (GC)
  SimTime erase_us_ = 0;         // tBERS, one erase block
  SimTime mount_scan_us_ = 0;    // reboot: one summary page per erase block
  double internal_read_kbps_ = 0.0;  // rate for policy merge reads

  // Time state.
  SimTime accounted_until_ = 0;
  SimTime busy_until_ = 0;   // last page completion across all queues
  SimTime cmd_busy_ = 0;     // controller/command issue serialization
  std::vector<SimTime> unit_busy_;     // per-plane cell-operation queues
  std::vector<SimTime> channel_busy_;  // per-channel bus queues
  std::uint32_t stripe_cursor_ = 0;
  std::uint32_t last_file_ = ~std::uint32_t{0};
  std::vector<std::pair<SimTime, double>> capacity_events_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_NAND_SSD_H_
