#include "src/device/flash_disk.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

FlashDisk::FlashDisk(const DeviceSpec& spec, const DeviceOptions& options)
    : spec_(spec),
      options_(options),
      meter_({{"read", spec.read_w},
              {"write", spec.write_w},
              {"erase", spec.erase_w},
              {"idle", spec.idle_w}}),
      injector_(options.fault) {
  MOBISIM_CHECK(spec.kind == DeviceKind::kFlashDisk);
  ValidateDeviceSpec(spec, options);
  const std::uint64_t blocks = options.capacity_bytes / options.block_bytes;
  MOBISIM_CHECK(blocks > 0);
  mapped_.assign(blocks, false);
  pre_erased_bytes_ = blocks * options.block_bytes;
  async_erase_ = spec.pre_erased_write_kbps > 0.0;
}

void FlashDisk::Preload(std::uint64_t live_blocks) {
  MOBISIM_CHECK(live_blocks <= mapped_.size());
  MOBISIM_CHECK(live_bytes_ == 0);
  for (std::uint64_t i = 0; i < live_blocks; ++i) {
    mapped_[i] = true;
  }
  live_bytes_ = live_blocks * options_.block_bytes;
  pre_erased_bytes_ -= live_bytes_;
}

void FlashDisk::set_asynchronous_erasure(bool enabled) {
  if (enabled) {
    MOBISIM_CHECK(spec_.pre_erased_write_kbps > 0.0);
    MOBISIM_CHECK(spec_.erase_kbps > 0.0);
  }
  async_erase_ = enabled;
}

void FlashDisk::AccountUntil(SimTime t) {
  if (t <= accounted_until_) {
    return;
  }
  SimTime available = t - accounted_until_;
  if (async_erase_ && dirty_bytes_ > 0) {
    // Background erasure of invalidated sectors during idle time.
    const SimTime needed = TransferTimeUs(dirty_bytes_, spec_.erase_kbps);
    const SimTime spent = std::min(available, needed);
    const std::uint64_t erased = std::min(
        dirty_bytes_,
        static_cast<std::uint64_t>(SecFromUs(spent) * spec_.erase_kbps * 1024.0));
    dirty_bytes_ -= erased;
    pre_erased_bytes_ += erased;
    meter_.Accumulate(kModeErase, spent);
    available -= spent;
  }
  meter_.Accumulate(kModeIdle, available);
  accounted_until_ = t;
}

void FlashDisk::AdvanceTo(SimTime now) { AccountUntil(now); }

SimTime FlashDisk::ServiceRead(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.read_overhead_ms;
  const SimTime service = UsFromMs(overhead_ms) + TransferTimeUs(bytes, spec_.read_kbps);
  meter_.Accumulate(kModeRead, service);
  busy_until_ = start + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.reads;
  counters_.bytes_read += bytes;
  return busy_until_ - now;
}

SimTime FlashDisk::ServiceWrite(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;

  // Update the mapping: overwritten sectors become dirty (their previous
  // physical copies need erasure); first writes consume clean space.
  std::uint64_t overwritten = 0;
  for (std::uint32_t i = 0; i < rec.block_count; ++i) {
    const std::uint64_t lba = rec.lba + i;
    MOBISIM_CHECK(lba < mapped_.size());
    if (mapped_[lba]) {
      ++overwritten;
    } else {
      mapped_[lba] = true;
      live_bytes_ += options_.block_bytes;
    }
  }

  SimTime transfer;
  if (async_erase_) {
    dirty_bytes_ += overwritten * options_.block_bytes;
    const std::uint64_t fast_bytes = std::min(bytes, pre_erased_bytes_);
    const std::uint64_t slow_bytes = bytes - fast_bytes;
    pre_erased_bytes_ -= fast_bytes;
    // The slow path erases a dirty sector and then writes it, on demand.
    const double coupled_kbps =
        1.0 / (1.0 / spec_.erase_kbps + 1.0 / spec_.pre_erased_write_kbps);
    transfer = TransferTimeUs(fast_bytes, spec_.pre_erased_write_kbps) +
               TransferTimeUs(slow_bytes, coupled_kbps);
    if (slow_bytes > 0) {
      MOBISIM_CHECK(dirty_bytes_ >= slow_bytes);
      dirty_bytes_ -= slow_bytes;
      ++counters_.write_stalls;
      counters_.stall_time_us += TransferTimeUs(slow_bytes, coupled_kbps);
    }
  } else {
    // Erase-coupled write.  A part that supports decoupling (SDP5A) running
    // synchronously erases then writes each sector; older parts fold the
    // erase into `write_kbps`.
    double coupled_kbps = spec_.write_kbps;
    if (spec_.erase_kbps > 0.0 && spec_.pre_erased_write_kbps > 0.0) {
      coupled_kbps = 1.0 / (1.0 / spec_.erase_kbps + 1.0 / spec_.pre_erased_write_kbps);
    }
    transfer = TransferTimeUs(bytes, coupled_kbps);
  }

  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  const SimTime service = UsFromMs(overhead_ms) + transfer;
  meter_.Accumulate(kModeWrite, service);
  busy_until_ = start + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return busy_until_ - now;
}

SimTime FlashDisk::FailedWrite(SimTime now, const BlockRecord& rec) {
  // The attempt pays bus overhead and programming time at the coupled rate
  // but commits no sector, so the mapping (and dirty/pre-erased accounting)
  // is untouched and a retry replays the identical update.
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  double kbps = spec_.write_kbps;
  if (spec_.erase_kbps > 0.0 && spec_.pre_erased_write_kbps > 0.0) {
    kbps = 1.0 / (1.0 / spec_.erase_kbps + 1.0 / spec_.pre_erased_write_kbps);
  }
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  const SimTime service = UsFromMs(overhead_ms) + TransferTimeUs(bytes, kbps);
  meter_.Accumulate(kModeWrite, service);
  busy_until_ = start + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return busy_until_ - now;
}

IoResult FlashDisk::ReadOp(SimTime now, const BlockRecord& rec) {
  // Reads mutate no logical state, so the error draw can follow the service.
  const SimTime t = ServiceRead(now, rec);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

IoResult FlashDisk::WriteOp(SimTime now, const BlockRecord& rec) {
  // Writes mutate the mapping, so the error is drawn *before* committing.
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {FailedWrite(now, rec), IoStatus::kTransientError};
  }
  return {ServiceWrite(now, rec), IoStatus::kOk};
}

SimTime FlashDisk::PowerLoss(SimTime now) {
  // Block-interface flash commits each sector as it is programmed; nothing
  // volatile to lose and no recovery pass.  In-flight work is abandoned.
  AccountUntil(now);
  busy_until_ = std::min(busy_until_, now);
  last_file_ = ~std::uint32_t{0};
  return 0;
}

void FlashDisk::Trim(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  for (std::uint32_t i = 0; i < rec.block_count; ++i) {
    const std::uint64_t lba = rec.lba + i;
    MOBISIM_CHECK(lba < mapped_.size());
    if (mapped_[lba]) {
      mapped_[lba] = false;
      live_bytes_ -= options_.block_bytes;
      dirty_bytes_ += options_.block_bytes;
    }
  }
  if (!async_erase_) {
    // With coupled erasure the space is reusable immediately; fold it back.
    pre_erased_bytes_ += dirty_bytes_;
    dirty_bytes_ = 0;
  }
}

void FlashDisk::Finish(SimTime end) { AccountUntil(std::max(end, busy_until_)); }

}  // namespace mobisim
