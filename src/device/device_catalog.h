// Catalog of the devices the paper evaluates.
//
// "Measured" specs are derived from the OmniBook micro-benchmarks the paper
// reports in Table 1 (4-Kbyte operation rate gives the per-op overhead,
// 1-Mbyte file rate gives the sustained bandwidth); "datasheet" specs are
// Table 2 verbatim.  Fields the paper does not state (disk standby power,
// DRAM refresh power, ...) carry documented engineering estimates; see
// DESIGN.md section 6.
#ifndef MOBISIM_SRC_DEVICE_DEVICE_CATALOG_H_
#define MOBISIM_SRC_DEVICE_DEVICE_CATALOG_H_

#include <vector>

#include "src/device/device_spec.h"

namespace mobisim {

// Western Digital Caviar Ultralite CU140 40-Mbyte PCMCIA Type III disk.
DeviceSpec Cu140Measured();
DeviceSpec Cu140Datasheet();
// Hewlett-Packard Kittyhawk 20-Mbyte 1.3-inch disk.
DeviceSpec KittyhawkDatasheet();
// SunDisk SDP10 10-Mbyte 12-V flash disk (HP F1013A).
DeviceSpec Sdp10Measured();
DeviceSpec Sdp10Datasheet();
// SunDisk SDP5 5-V flash disk (newer part, datasheet numbers).
DeviceSpec Sdp5Datasheet();
// SunDisk SDP5A: SDP5 with decoupled (asynchronous) erasure support.
DeviceSpec Sdp5aDatasheet();
// Intel Series 2 flash memory card under MFFS 2.00 (measured) and raw
// (datasheet).
DeviceSpec IntelCardMeasured();
DeviceSpec IntelCardDatasheet();
// Intel 16-Mbit Series 2+ card: 300-ms block erases and 10^6-cycle
// endurance (section 2 mentions these as the newer parts the authors could
// not yet obtain).
DeviceSpec IntelSeries2PlusDatasheet();
// Modern parameterized NAND (DeviceKind::kNandSsd; Olivier et al. model).
// One raw SLC die with no internal parallelism...
DeviceSpec NandChip();
// ...and two SSD-class topologies built from the same cell timings.
DeviceSpec NandSsd4ch();   // 4 channels x 2 dies
DeviceSpec NandSsd8ch();   // 8 channels x 2 dies

// NEC uPD4216160 16-Mbit DRAM (buffer cache).
MemorySpec NecDramSpec();
// NEC uPD43256B 32Kx8 55-ns SRAM (battery-backed write buffer).
MemorySpec NecSramSpec();

// All storage device specs, for sweep-style tests and benches.
std::vector<DeviceSpec> AllDeviceSpecs();

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_DEVICE_CATALOG_H_
