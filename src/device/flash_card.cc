#include "src/device/flash_card.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mobisim {

namespace {

SegmentManagerConfig MakeSegmentConfig(const DeviceSpec& spec,
                                       const DeviceOptions& options,
                                       const FtlPolicy* policy) {
  SegmentManagerConfig seg;
  seg.capacity_bytes = options.capacity_bytes;
  seg.segment_bytes = spec.erase_segment_bytes;
  seg.block_bytes = options.block_bytes;
  seg.separate_cleaning_segment =
      policy->RouteCleaningSeparately(options.separate_cleaning_segment);
  seg.cleaning_policy = options.cleaning_policy;
  seg.policy = policy;
  return seg;
}

}  // namespace

FlashCard::FlashCard(const DeviceSpec& spec, const DeviceOptions& options)
    : spec_(spec),
      options_(options),
      meter_({{"read", spec.read_w},
              {"write", spec.write_w},
              {"erase", spec.erase_w},
              {"clean", spec.write_w},
              {"idle", spec.idle_w}}),
      policy_(MakeFtlPolicy(options.ftl_policy, options.cleaning_policy)),
      ftl_hooks_(policy_->kind() != FtlPolicyKind::kLogStructured),
      segments_(MakeSegmentConfig(spec, options, policy_.get())),
      injector_(options.fault) {
  MOBISIM_CHECK(spec.kind == DeviceKind::kFlashCard);
  // Keep the card's own slack arithmetic consistent with the routing the
  // policy chose for the manager.
  options_.separate_cleaning_segment =
      policy_->RouteCleaningSeparately(options.separate_cleaning_segment);
  const double copy_read_kbps =
      spec.internal_read_kbps > 0.0 ? spec.internal_read_kbps : spec.read_kbps;
  const double copy_write_kbps =
      spec.internal_write_kbps > 0.0 ? spec.internal_write_kbps : spec.write_kbps;
  internal_read_kbps_ = copy_read_kbps;
  block_copy_us_ = TransferTimeUs(options.block_bytes, copy_read_kbps) +
                   TransferTimeUs(options.block_bytes, copy_write_kbps);
  erase_us_ = UsFromMs(spec.erase_ms_per_segment);
  // Reboot after power loss rescans one summary block per segment to rebuild
  // the block mapping.
  mount_scan_us_ = static_cast<SimTime>(segments_.segment_count()) *
                   TransferTimeUs(options.block_bytes, copy_read_kbps);

  const FaultConfig& fault = options.fault;
  if (fault.wear_out) {
    // Sample each erase block's cycle budget around the datasheet endurance.
    Rng wear_rng(fault.seed, fault_streams::kWearBudget);
    const double mean = std::max(
        1.0, static_cast<double>(spec.endurance_cycles) * fault.endurance_scale);
    for (std::uint32_t s = 0; s < segments_.segment_count(); ++s) {
      const double draw = wear_rng.Normal(mean, mean * fault.endurance_spread);
      segments_.SetEnduranceBudget(
          s, draw < 1.0 ? 1u : static_cast<std::uint32_t>(draw));
    }
  }
  if (fault.bad_block_rate > 0.0) {
    // Factory bad blocks, capped so the card can still open active segments
    // and run the cleaner.
    Rng bad_rng(fault.seed, fault_streams::kBadBlocks);
    constexpr std::uint32_t kMinGoodSegments = 4;
    std::uint32_t good = segments_.segment_count();
    for (std::uint32_t s = 0; s < segments_.segment_count() && good > kMinGoodSegments;
         ++s) {
      if (bad_rng.Chance(fault.bad_block_rate)) {
        segments_.RetireSegment(s);
        --good;
      }
    }
    if (segments_.bad_segment_count() > 0) {
      capacity_events_.emplace_back(0, UsableFraction());
    }
  }
}

double FlashCard::UsableFraction() const {
  return static_cast<double>(segments_.usable_blocks()) /
         static_cast<double>(segments_.total_blocks());
}

void FlashCard::Preload(std::uint64_t trace_blocks, double utilization, bool interleave) {
  MOBISIM_CHECK(utilization > 0.0 && utilization < 1.0);
  // Utilization is measured against *usable* capacity so a card with factory
  // bad blocks preloads to the same effective fullness.
  const std::uint64_t target_live =
      static_cast<std::uint64_t>(utilization * static_cast<double>(segments_.usable_blocks()));
  MOBISIM_CHECK(trace_blocks <= target_live);
  // Leave the cleaner room to operate: two free segments, three when
  // cleaning copies get their own destination segment.
  const std::uint64_t slack_segments = options_.separate_cleaning_segment ? 3 : 2;
  MOBISIM_CHECK(target_live + slack_segments * segments_.blocks_per_segment() <=
                segments_.usable_blocks());
  const std::uint64_t filler = target_live - trace_blocks;
  if (ftl_hooks_) {
    // Policies with metadata pages (diff pages, map pages) claim lbas from
    // the never-accessed logical window above the preloaded region.
    policy_->AttachMetaWindow(target_live, segments_.total_blocks() - target_live,
                              options_.block_bytes);
  }

  if (!interleave || filler == 0 || trace_blocks == 0) {
    segments_.Preload(0, trace_blocks);
    segments_.Preload(trace_blocks, filler);
    return;
  }
  // Interleave filler among workload blocks with an integer error
  // accumulator so each cleaned segment carries its share of cold data.
  std::uint64_t next_trace = 0;
  std::uint64_t next_filler = trace_blocks;
  std::int64_t error = 0;
  const std::int64_t t = static_cast<std::int64_t>(trace_blocks);
  const std::int64_t f = static_cast<std::int64_t>(filler);
  while (next_trace < trace_blocks || next_filler < trace_blocks + filler) {
    if (next_filler >= trace_blocks + filler ||
        (next_trace < trace_blocks && error < t)) {
      segments_.Preload(next_trace++, 1);
      error += f;
    } else {
      segments_.Preload(next_filler++, 1);
      error -= t;
    }
  }
}

std::uint64_t FlashCard::AvailableSlots() const {
  const std::uint64_t free = segments_.free_slots();
  return free > job_.reserved_slots ? free - job_.reserved_slots : 0;
}

bool FlashCard::CanAcceptHostBlock() const {
  if (AvailableSlots() == 0) {
    return false;
  }
  if (segments_.active_free_slots() > 0) {
    return true;
  }
  // The active segment is full: writing means opening a fresh one.  The
  // card keeps one erased segment aside for the cleaner, so the host may
  // only take a segment when two are erased -- or when nothing is cleanable
  // at all (the card will never need the reserve).
  if (segments_.erased_segment_count() >= 2) {
    return true;
  }
  return segments_.erased_segment_count() >= 1 && !job_.active &&
         segments_.PickVictim() == SegmentManager::kNoSegment;
}

bool FlashCard::MaybeStartCleanJob() {
  if (job_.active) {
    return true;
  }
  // Keep at least one segment erased at all times (section 4.2): trigger as
  // soon as the reserve is down to its last erased segment.
  if (segments_.erased_segment_count() > 1) {
    return false;
  }
  const std::uint32_t victim = segments_.PickVictim();
  if (victim == SegmentManager::kNoSegment) {
    return false;
  }
  const std::uint32_t live = segments_.VictimLiveBlocks(victim);
  if (segments_.free_slots() < live) {
    return false;  // not enough room to relocate the victim's live data yet
  }
  if (segments_.erased_segment_count() == 0 && segments_.cleaning_free_slots() < live) {
    return false;  // relocation would need a fresh segment that does not exist
  }
  job_.active = true;
  job_.victim = victim;
  job_.copy_remaining_us = static_cast<SimTime>(live) * block_copy_us_;
  job_.erase_remaining_us = erase_us_;
  job_.reserved_slots = live;
  ++counters_.clean_jobs;
  return true;
}

void FlashCard::CompleteCleanJob() {
  MOBISIM_DCHECK(job_.active);
  const std::uint32_t victim = job_.victim;
  const std::uint32_t copied = segments_.CleanSegment(victim);
  counters_.blocks_copied += copied;
  ++counters_.segment_erases;
  job_ = CleanJob{};
  if (segments_.segment_is_bad(victim)) {
    // The victim hit its wear budget: its live data was just remapped away
    // and the card shrank by one segment.
    counters_.remapped_blocks += copied;
    capacity_events_.emplace_back(accounted_until_, UsableFraction());
  }
}

SimTime FlashCard::FinishCleanJobNow() {
  MOBISIM_DCHECK(job_.active);
  const SimTime copy = job_.copy_remaining_us;
  const SimTime erase = job_.erase_remaining_us;
  meter_.Accumulate(kModeClean, copy);
  meter_.Accumulate(kModeErase, erase);
  CompleteCleanJob();
  return copy + erase;
}

void FlashCard::AccountUntil(SimTime t) {
  if (t <= accounted_until_) {
    return;
  }
  SimTime available = t - accounted_until_;
  // Background cleaning consumes idle time; keep starting follow-up jobs
  // while time remains and the erased reserve is low.
  while (available > 0 && options_.background_cleaning && MaybeStartCleanJob()) {
    if (job_.copy_remaining_us > 0) {
      const SimTime spent = std::min(available, job_.copy_remaining_us);
      meter_.Accumulate(kModeClean, spent);
      job_.copy_remaining_us -= spent;
      available -= spent;
    }
    if (available > 0 && job_.copy_remaining_us == 0 && job_.erase_remaining_us > 0) {
      const SimTime spent = std::min(available, job_.erase_remaining_us);
      meter_.Accumulate(kModeErase, spent);
      job_.erase_remaining_us -= spent;
      available -= spent;
    }
    if (job_.copy_remaining_us == 0 && job_.erase_remaining_us == 0) {
      CompleteCleanJob();
    } else {
      break;  // ran out of idle time mid-job
    }
  }
  meter_.Accumulate(kModeIdle, available);
  accounted_until_ = t;
}

void FlashCard::AdvanceTo(SimTime now) { AccountUntil(now); }

SimTime FlashCard::ServiceRead(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.read_overhead_ms;
  SimTime service = UsFromMs(overhead_ms) + TransferTimeUs(bytes, spec_.read_kbps);
  if (ftl_hooks_) {
    // Merge-on-read: fold any outstanding policy state (page diffs) into the
    // returned block, charged at the internal read rate.
    std::uint64_t extra = 0;
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      extra += policy_->ExtraReadBytes(rec.lba + i);
    }
    if (extra > 0) {
      service += TransferTimeUs(extra, internal_read_kbps_);
    }
  }
  meter_.Accumulate(kModeRead, service);
  busy_until_ = start + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.reads;
  counters_.bytes_read += bytes;
  return busy_until_ - now;
}

SimTime FlashCard::ServiceWrite(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  SimTime stall = 0;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  std::uint64_t programmed = bytes;
  std::uint64_t merge_reads = 0;

  if (!ftl_hooks_) {
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      if (options_.background_cleaning) {
        // Bursts can arrive with no idle time in between; the job must be
        // *started* here (reserving relocation room) even though it only makes
        // progress during idle periods or synchronous stalls.
        MaybeStartCleanJob();
      }
      while (!CanAcceptHostBlock()) {
        // No erased space for this block: the write waits for cleaning to
        // yield an erased segment.  In on-demand mode this is where cleaning
        // happens at all.
        const bool job_ready = MaybeStartCleanJob();
        MOBISIM_CHECK(job_ready && "flash card wedged: no free space and nothing cleanable");
        stall += FinishCleanJobNow();
      }
      segments_.WriteBlock(rec.lba + i);
    }
  } else {
    // The policy decides what each host block physically does: which log
    // appends happen (the block, a diff page, a map page — possibly none)
    // and what transfer volumes to charge.
    programmed = 0;
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      const std::uint64_t lba = rec.lba + i;
      const HostWritePlan plan =
          policy_->PlanHostWrite(lba, segments_.IsMapped(lba), options_.block_bytes);
      programmed += plan.programmed_bytes;
      merge_reads += plan.merge_read_bytes;
      for (std::uint32_t k = 0; k < plan.append_count; ++k) {
        if (options_.background_cleaning) {
          MaybeStartCleanJob();
        }
        while (!CanAcceptHostBlock()) {
          const bool job_ready = MaybeStartCleanJob();
          MOBISIM_CHECK(job_ready &&
                        "flash card wedged: no free space and nothing cleanable");
          stall += FinishCleanJobNow();
        }
        segments_.WriteBlock(plan.appends[k]);
      }
    }
  }
  if (!options_.background_cleaning) {
    // On-demand mode also replenishes the reserve synchronously once the
    // erased reserve is exhausted, charging the triggering write.
    while (segments_.erased_segment_count() <= 1 && MaybeStartCleanJob()) {
      stall += FinishCleanJobNow();
    }
  }
  if (stall > 0) {
    ++counters_.write_stalls;
    counters_.stall_time_us += stall;
  }

  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  SimTime service = UsFromMs(overhead_ms) + TransferTimeUs(programmed, spec_.write_kbps);
  meter_.Accumulate(kModeWrite, service);
  if (merge_reads > 0) {
    // Diff-chain merges read the base page and its diffs back internally
    // before reprogramming.
    const SimTime merge_us = TransferTimeUs(merge_reads, internal_read_kbps_);
    meter_.Accumulate(kModeRead, merge_us);
    service += merge_us;
  }
  busy_until_ = start + stall + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return busy_until_ - now;
}

SimTime FlashCard::FailedWrite(SimTime now, const BlockRecord& rec) {
  // A failed attempt pays bus overhead and programming time but appends
  // nothing to the log: no slots consumed, no cleaning triggered, no stall.
  // A retry therefore replays the identical mapping update.
  AccountUntil(now);
  const SimTime start = std::max(now, busy_until_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  const SimTime service = UsFromMs(overhead_ms) + TransferTimeUs(bytes, spec_.write_kbps);
  meter_.Accumulate(kModeWrite, service);
  busy_until_ = start + service;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return busy_until_ - now;
}

IoResult FlashCard::ReadOp(SimTime now, const BlockRecord& rec) {
  // Reads mutate no logical state, so the error draw can follow the service.
  const SimTime t = ServiceRead(now, rec);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

IoResult FlashCard::WriteOp(SimTime now, const BlockRecord& rec) {
  // Writes mutate the log, so the error is drawn *before* committing.
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {FailedWrite(now, rec), IoStatus::kTransientError};
  }
  return {ServiceWrite(now, rec), IoStatus::kOk};
}

SimTime FlashCard::PowerLoss(SimTime now) {
  AccountUntil(now);
  busy_until_ = std::min(busy_until_, now);
  // Reboot rescans one summary block per segment to rebuild the mapping.
  SimTime recovery = mount_scan_us_;
  meter_.Accumulate(kModeRead, mount_scan_us_);
  if (job_.active) {
    if (job_.copy_remaining_us == 0) {
      // Every live copy was durable before power failed; only the erase was
      // interrupted.  Recovery re-issues it and commits the job.
      recovery += erase_us_;
      meter_.Accumulate(kModeErase, erase_us_);
      CompleteCleanJob();
    } else {
      // Interrupted mid-copy.  Partial copies are superseded out-of-place
      // data the mount scan ignores; the mapping is unchanged, so cleaning
      // simply replays the victim later.
      job_ = CleanJob{};
    }
  }
  busy_until_ = now + recovery;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = ~std::uint32_t{0};
  return recovery;
}

void FlashCard::Trim(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  for (std::uint32_t i = 0; i < rec.block_count; ++i) {
    if (ftl_hooks_) {
      policy_->OnTrim(rec.lba + i);
    }
    segments_.TrimBlock(rec.lba + i);
  }
}

void FlashCard::Finish(SimTime end) { AccountUntil(std::max(end, busy_until_)); }

const DeviceCounters& FlashCard::counters() const {
  counters_.segment_erase_stats = segments_.EraseCountStats();
  counters_.bad_segments = segments_.bad_segment_count();
  counters_.usable_blocks = segments_.usable_blocks();
  counters_.physical_blocks = segments_.total_blocks();
  const FtlCounters& ftl = policy_->counters();
  counters_.diff_writes = ftl.diff_writes;
  counters_.diff_merges = ftl.diff_merges;
  counters_.diff_merge_reads = ftl.diff_merge_reads;
  counters_.remap_table_hits = ftl.remap_table_hits;
  counters_.remap_table_wraps = ftl.remap_table_wraps;
  return counters_;
}

}  // namespace mobisim
