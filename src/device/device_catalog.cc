#include "src/device/device_catalog.h"

#include "src/util/check.h"

namespace mobisim {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kMagneticDisk:
      return "magnetic-disk";
    case DeviceKind::kFlashDisk:
      return "flash-disk";
    case DeviceKind::kFlashCard:
      return "flash-card";
    case DeviceKind::kNandSsd:
      return "nand-ssd";
  }
  MOBISIM_CHECK(false && "DeviceKindName: corrupt DeviceKind value");
}

DeviceSpec Cu140Datasheet() {
  DeviceSpec s;
  s.name = "cu140-datasheet";
  s.kind = DeviceKind::kMagneticDisk;
  s.read_overhead_ms = 25.7;   // Table 2: random-op overhead
  s.write_overhead_ms = 25.7;
  s.sequential_overhead_ms = 8.3;  // one rotation at 3600 rpm (estimate)
  s.read_kbps = 2125.0;
  s.write_kbps = 2125.0;
  s.spinup_ms = 1000.0;
  s.read_w = 1.75;
  s.write_w = 1.75;
  s.idle_w = 0.7;
  s.sleep_w = 0.0;
  s.spinup_w = 3.0;
  return s;
}

DeviceSpec Cu140Measured() {
  // Table 1, uncompressed columns: 4-KB ops at 116/76 KB/s and sustained
  // 543/231 KB/s imply ~27/35 ms of per-op overhead under DOS.
  DeviceSpec s = Cu140Datasheet();
  s.name = "cu140-measured";
  s.read_overhead_ms = 27.1;
  s.write_overhead_ms = 35.3;
  s.read_kbps = 543.0;
  s.write_kbps = 231.0;
  return s;
}

DeviceSpec KittyhawkDatasheet() {
  DeviceSpec s;
  s.name = "kh-datasheet";
  s.kind = DeviceKind::kMagneticDisk;
  // 1.3-inch drive: slower access and transfer than the CU140, faster but
  // more power-hungry spin-up cycle relative to its size class.
  s.read_overhead_ms = 50.0;
  s.write_overhead_ms = 50.0;
  s.sequential_overhead_ms = 13.0;
  s.read_kbps = 900.0;
  s.write_kbps = 900.0;
  s.spinup_ms = 1500.0;
  s.read_w = 1.5;
  s.write_w = 1.5;
  s.idle_w = 0.75;
  s.sleep_w = 0.0;
  s.spinup_w = 2.5;
  return s;
}

DeviceSpec Sdp10Datasheet() {
  DeviceSpec s;
  s.name = "sdp10-datasheet";
  s.kind = DeviceKind::kFlashDisk;
  s.read_overhead_ms = 1.5;  // Table 2
  s.write_overhead_ms = 1.5;
  s.sequential_overhead_ms = 1.5;
  s.read_kbps = 600.0;
  s.write_kbps = 50.0;  // erase coupled with write
  s.erase_segment_bytes = 512;
  s.read_w = 0.36;
  s.write_w = 0.36;
  s.erase_w = 0.36;
  s.idle_w = 0.005;
  s.sleep_w = 0.005;
  return s;
}

DeviceSpec Sdp10Measured() {
  // Table 1: 280/410 KB/s reads, 39/40 KB/s writes under DOS.
  DeviceSpec s = Sdp10Datasheet();
  s.name = "sdp10-measured";
  s.read_overhead_ms = 4.5;
  s.write_overhead_ms = 2.6;
  s.read_kbps = 410.0;
  s.write_kbps = 40.0;
  return s;
}

DeviceSpec Sdp5Datasheet() {
  DeviceSpec s;
  s.name = "sdp5-datasheet";
  s.kind = DeviceKind::kFlashDisk;
  s.read_overhead_ms = 0.7;
  s.write_overhead_ms = 1.0;
  s.sequential_overhead_ms = 0.7;
  s.read_kbps = 700.0;
  s.write_kbps = 75.0;  // coupled erase+write (section 2)
  s.erase_segment_bytes = 512;
  s.read_w = 0.36;
  s.write_w = 0.36;
  s.erase_w = 0.36;
  s.idle_w = 0.005;
  s.sleep_w = 0.005;
  return s;
}

DeviceSpec Sdp5aDatasheet() {
  // Section 5.3: erasure at 150 KB/s decoupled from writing; pre-erased
  // areas accept writes at 400 KB/s.
  DeviceSpec s = Sdp5Datasheet();
  s.name = "sdp5a-datasheet";
  s.erase_kbps = 150.0;
  s.pre_erased_write_kbps = 400.0;
  return s;
}

DeviceSpec IntelCardDatasheet() {
  DeviceSpec s;
  s.name = "intel-datasheet";
  s.kind = DeviceKind::kFlashCard;
  s.read_overhead_ms = 0.0;  // byte-addressed: no controller latency
  s.write_overhead_ms = 0.0;
  s.sequential_overhead_ms = 0.0;
  s.read_kbps = 9765.0;
  s.write_kbps = 214.0;  // into pre-erased memory
  s.erase_segment_bytes = 128 * 1024;
  s.erase_ms_per_segment = 1600.0;  // fixed, independent of segment fill
  s.endurance_cycles = 100000;
  s.read_w = 0.47;
  s.write_w = 0.47;
  s.erase_w = 0.47;
  s.idle_w = 0.0005;
  s.sleep_w = 0.0005;
  return s;
}

DeviceSpec IntelCardMeasured() {
  // Table 1, 4-KB file columns (MFFS 2.00 software overheads included):
  // 645 KB/s reads of uncompressible data, 43 KB/s writes.
  DeviceSpec s = IntelCardDatasheet();
  s.name = "intel-measured";
  s.read_overhead_ms = 0.5;
  s.write_overhead_ms = 1.0;
  s.sequential_overhead_ms = 0.5;
  s.read_kbps = 645.0;
  s.write_kbps = 43.0;
  // Cleaning copies bypass the MFFS software path and run at medium speed.
  s.internal_read_kbps = 9765.0;
  s.internal_write_kbps = 214.0;
  return s;
}

DeviceSpec IntelSeries2PlusDatasheet() {
  DeviceSpec s = IntelCardDatasheet();
  s.name = "intel-series2plus-datasheet";
  s.erase_ms_per_segment = 300.0;  // section 2: blocks erase in 300 ms
  s.endurance_cycles = 1000000;    // one million erasures per block
  return s;
}

DeviceSpec NandChip() {
  // One raw SLC NAND die: the degenerate topology (1 channel x 1 die x
  // 1 plane) that exposes the cell timings with no internal parallelism.
  // Cell timings are datasheet-class SLC numbers per Olivier et al.:
  // tR = 25 us, tPROG = 200 us, tBERS = 1.5 ms, 2-KB pages, 64-page blocks,
  // 40-MB/s channel bus.
  DeviceSpec s;
  s.name = "nand-chip";
  s.kind = DeviceKind::kNandSsd;
  s.read_overhead_ms = 0.02;   // controller command issue
  s.write_overhead_ms = 0.02;
  s.sequential_overhead_ms = 0.02;
  s.nand.channels = 1;
  s.nand.dies_per_channel = 1;
  s.nand.planes_per_die = 1;
  s.nand.page_bytes = 2048;
  s.nand.pages_per_block = 64;
  s.nand.read_page_us = 25.0;
  s.nand.program_page_us = 200.0;
  s.nand.erase_block_ms = 1.5;
  s.nand.channel_mbps = 40.0;
  s.erase_segment_bytes = s.nand.block_bytes();  // 128 KB
  s.erase_ms_per_segment = s.nand.erase_block_ms;
  s.endurance_cycles = 100000;
  // Host-visible single-unit streaming rates, derived from the cell timings
  // (page / (tR + transfer), page / (tPROG + transfer)); generic code paths
  // (DescribeConfig, spec sanity checks) read these, the NAND timing model
  // does not.
  s.read_kbps = 26900.0;
  s.write_kbps = 8000.0;
  s.read_w = 0.08;
  s.write_w = 0.12;
  s.erase_w = 0.11;
  s.idle_w = 0.01;
  s.sleep_w = 0.001;
  return s;
}

DeviceSpec NandSsd4ch() {
  // Small SSD: 4 channels x 2 dies, same SLC cell timings as the raw chip.
  // Striping across the 8 parallel units is what separates this preset from
  // nand-chip in the uFLIP parallelism pattern.
  DeviceSpec s = NandChip();
  s.name = "nand-ssd-4ch";
  s.nand.channels = 4;
  s.nand.dies_per_channel = 2;
  s.endurance_cycles = 10000;  // denser parts trade endurance for capacity
  s.idle_w = 0.03;             // controller + DRAM map
  return s;
}

DeviceSpec NandSsd8ch() {
  // Wider SSD: 8 channels x 2 dies = 16 parallel units.
  DeviceSpec s = NandSsd4ch();
  s.name = "nand-ssd-8ch";
  s.nand.channels = 8;
  s.idle_w = 0.04;
  return s;
}

MemorySpec NecDramSpec() {
  MemorySpec s;
  s.name = "nec-uPD4216160-dram";
  s.read_kbps = 25 * 1024.0;
  s.write_kbps = 25 * 1024.0;
  s.access_overhead_us = 0.0;
  s.active_w = 0.25;
  // Self-refresh: ~12 mW per Mbyte keeps the cache contents alive; this is
  // the term that makes large DRAM caches a net energy loss in section 5.4.
  s.idle_w_per_mbyte = 0.012;
  return s;
}

MemorySpec NecSramSpec() {
  MemorySpec s;
  s.name = "nec-uPD43256B-sram";
  s.read_kbps = 20 * 1024.0;
  s.write_kbps = 20 * 1024.0;
  s.access_overhead_us = 0.0;
  s.active_w = 0.15;
  // CMOS SRAM data retention is microwatts per chip; what costs energy is
  // the active traffic, not keeping the bits alive.
  s.idle_w_per_mbyte = 0.0005;
  return s;
}

std::vector<DeviceSpec> AllDeviceSpecs() {
  return {Cu140Measured(),      Cu140Datasheet(),    KittyhawkDatasheet(),
          Sdp10Measured(),      Sdp10Datasheet(),    Sdp5Datasheet(),
          Sdp5aDatasheet(),     IntelCardMeasured(), IntelCardDatasheet(),
          IntelSeries2PlusDatasheet(), NandChip(),   NandSsd4ch(),
          NandSsd8ch()};
}

}  // namespace mobisim
