#include "src/device/magnetic_disk.h"

#include <algorithm>

#include "src/util/check.h"

namespace mobisim {

MagneticDisk::MagneticDisk(const DeviceSpec& spec, const DeviceOptions& options)
    : spec_(spec),
      options_(options),
      meter_({{"read", spec.read_w},
              {"write", spec.write_w},
              {"idle", spec.idle_w},
              {"sleep", spec.sleep_w},
              {"spinup", spec.spinup_w}}),
      injector_(options.fault) {
  MOBISIM_CHECK(spec.kind == DeviceKind::kMagneticDisk);
  ValidateDeviceSpec(spec, options);
  MOBISIM_CHECK(options.spin_down_after_us >= 0);
  threshold_us_ = options.spin_down_after_us;
}

const char* SpinDownPolicyName(SpinDownPolicy policy) {
  switch (policy) {
    case SpinDownPolicy::kFixedThreshold:
      return "fixed-threshold";
    case SpinDownPolicy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

bool MagneticDisk::IsSpinningAt(SimTime now) const {
  if (!spinning_) {
    return false;
  }
  return now < idle_since_ + threshold_us_;
}

void MagneticDisk::AdaptThreshold(SimTime sleep_duration_us) {
  if (options_.spin_down_policy != SpinDownPolicy::kAdaptive) {
    return;
  }
  // Break-even: a sleep shorter than this wasted more energy on the spin-up
  // than the sleep saved.
  const double spinup_j = spec_.spinup_w * spec_.spinup_ms / 1000.0;
  const double saved_per_sec = spec_.idle_w - spec_.sleep_w;
  const SimTime break_even_us =
      saved_per_sec > 0.0 ? UsFromSec(spinup_j / saved_per_sec) : kUsPerSec;
  if (sleep_duration_us < break_even_us) {
    threshold_us_ = std::min(options_.adaptive_max_us, threshold_us_ * 2);
  } else {
    threshold_us_ = std::max(options_.adaptive_min_us, threshold_us_ * 9 / 10);
  }
}

void MagneticDisk::AccountUntil(SimTime t) {
  if (t <= accounted_until_) {
    return;
  }
  if (spinning_) {
    const SimTime spin_down_at = idle_since_ + threshold_us_;
    if (t <= spin_down_at) {
      meter_.Accumulate(kModeIdle, t - accounted_until_);
    } else {
      if (spin_down_at > accounted_until_) {
        meter_.Accumulate(kModeIdle, spin_down_at - accounted_until_);
      }
      spinning_ = false;
      slept_since_ = std::max(spin_down_at, accounted_until_);
      meter_.Accumulate(kModeSleep, t - slept_since_);
    }
  } else {
    meter_.Accumulate(kModeSleep, t - accounted_until_);
  }
  accounted_until_ = t;
}

void MagneticDisk::AdvanceTo(SimTime now) { AccountUntil(now); }

SimTime MagneticDisk::ServiceOp(SimTime now, const BlockRecord& rec, bool is_read) {
  AccountUntil(now);
  SimTime t = std::max(now, busy_until_);

  if (!spinning_) {
    AdaptThreshold(std::max(now, slept_since_) - slept_since_);
    const SimTime spinup_us = UsFromMs(spec_.spinup_ms);
    meter_.Accumulate(kModeSpinup, spinup_us);
    t += spinup_us;
    spinning_ = true;
    ++counters_.spinups;
    // The heads land wherever the drive parked them; the next access is a
    // random one regardless of file locality.
    last_file_ = ~std::uint32_t{0};
  }

  const double overhead_ms = rec.file_id == last_file_
                                 ? spec_.sequential_overhead_ms
                                 : (is_read ? spec_.read_overhead_ms : spec_.write_overhead_ms);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const SimTime service =
      UsFromMs(overhead_ms) + TransferTimeUs(bytes, is_read ? spec_.read_kbps : spec_.write_kbps);
  meter_.Accumulate(is_read ? kModeRead : kModeWrite, service);
  t += service;

  busy_until_ = t;
  accounted_until_ = std::max(accounted_until_, t);
  idle_since_ = t;
  last_file_ = rec.file_id;

  if (is_read) {
    ++counters_.reads;
    counters_.bytes_read += bytes;
  } else {
    ++counters_.writes;
    counters_.bytes_written += bytes;
  }
  return t - now;
}

// A disk has no logical state to corrupt, so a transiently-failed attempt is
// simply a full-cost service whose data did not make it; the error draw
// happens after the mechanics.
IoResult MagneticDisk::ReadOp(SimTime now, const BlockRecord& rec) {
  const SimTime t = ServiceOp(now, rec, /*is_read=*/true);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

IoResult MagneticDisk::WriteOp(SimTime now, const BlockRecord& rec) {
  const SimTime t = ServiceOp(now, rec, /*is_read=*/false);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

SimTime MagneticDisk::PowerLoss(SimTime now) {
  AccountUntil(now);
  // Power loss halts the platters instantly and abandons any queued work;
  // the next operation pays a normal spin-up.
  if (spinning_) {
    spinning_ = false;
    slept_since_ = now;
  }
  busy_until_ = std::min(busy_until_, now);
  idle_since_ = std::min(idle_since_, now);
  last_file_ = ~std::uint32_t{0};
  return 0;
}

void MagneticDisk::Trim(SimTime now, const BlockRecord& rec) {
  // Deleting a file costs a disk nothing at this level of abstraction.
  (void)now;
  (void)rec;
}

void MagneticDisk::Finish(SimTime end) { AccountUntil(std::max(end, busy_until_)); }

}  // namespace mobisim
