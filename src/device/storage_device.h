// Abstract non-volatile storage device driven by block-level operations.
//
// Devices are time-aware state machines: each call carries the simulation
// time at which the request arrives, the device accounts energy for the
// interval since its last activity (idle, asleep, background-erasing, ...),
// services the request, and returns the response time.  Requests arriving
// while the device is still busy queue behind it.
#ifndef MOBISIM_SRC_DEVICE_STORAGE_DEVICE_H_
#define MOBISIM_SRC_DEVICE_STORAGE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/device/device_spec.h"
#include "src/fault/fault.h"
#include "src/flash/ftl_policy.h"
#include "src/flash/segment_manager.h"
#include "src/trace/trace_record.h"
#include "src/util/energy_meter.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace mobisim {

// Cross-device event counters surfaced in simulation results.
struct DeviceCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  // Magnetic disk.
  std::uint64_t spinups = 0;
  // Flash.
  std::uint64_t segment_erases = 0;
  std::uint64_t blocks_copied = 0;   // cleaner copy traffic
  std::uint64_t clean_jobs = 0;
  std::uint64_t write_stalls = 0;    // writes that waited for erasure/cleaning
  SimTime stall_time_us = 0;
  // Fault injection (all stay zero when fault modeling is off).  reads/writes
  // above count *attempts*, so retried operations appear once per attempt.
  std::uint64_t transient_errors = 0;  // injected read/write attempt failures
  std::uint64_t remapped_blocks = 0;   // live blocks relocated off retiring segments
  std::uint64_t bad_segments = 0;      // erase blocks retired (factory bad + wear-out)
  std::uint64_t usable_blocks = 0;     // flash card: physical slots still usable
  std::uint64_t physical_blocks = 0;   // flash card: physical slots at full health
  // FTL policy activity (all zero under the log-structured default).
  std::uint64_t diff_writes = 0;       // page-diff: overwrites absorbed as diffs
  std::uint64_t diff_merges = 0;       // page-diff: chains folded on overwrite
  std::uint64_t diff_merge_reads = 0;  // page-diff: reads that folded a chain
  std::uint64_t remap_table_hits = 0;  // fat-remap: table lookups served
  std::uint64_t remap_table_wraps = 0; // fat-remap: table cursor wraparounds
  // Endurance summary (flash card): per-segment erase-count distribution.
  RunningStats segment_erase_stats;
};

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  // Progresses background activity (spin-down timers, asynchronous erasure)
  // and energy accounting up to `now` without performing I/O.
  virtual void AdvanceTo(SimTime now) = 0;

  // Services a single request *attempt* arriving at `now`.  The returned
  // time is how long the attempt occupied the device; the status reports
  // injected transient errors.  A failed attempt pays full time and energy
  // but leaves the device's logical state (flash mapping, cleaning progress)
  // untouched, so callers may retry it verbatim.  With fault injection off
  // the status is always kOk.
  virtual IoResult ReadOp(SimTime now, const BlockRecord& rec) = 0;
  virtual IoResult WriteOp(SimTime now, const BlockRecord& rec) = 0;

  // Convenience wrappers for callers that do not model retries; they ignore
  // injected errors and return just the response time.
  SimTime Read(SimTime now, const BlockRecord& rec) { return ReadOp(now, rec).time_us; }
  SimTime Write(SimTime now, const BlockRecord& rec) { return WriteOp(now, rec).time_us; }

  // Cuts power at `now`: accounts up to `now`, truncates any in-flight work,
  // and resets volatile device state (spin state, cleaning progress).
  // Returns the simulated recovery ("reboot") time the device needs before
  // servicing new requests; the base implementation models devices with no
  // recovery pass.
  virtual SimTime PowerLoss(SimTime now) {
    AdvanceTo(now);
    return 0;
  }

  // Drops the blocks of a deleted file.  Free for a disk; reclaims space on
  // flash.  Takes no simulated time (metadata operation).
  virtual void Trim(SimTime now, const BlockRecord& rec) = 0;

  // Closes energy accounting at the end of the simulation.
  virtual void Finish(SimTime end) = 0;

  virtual const EnergyMeter& energy() const = 0;
  virtual const DeviceCounters& counters() const = 0;
  virtual const DeviceSpec& spec() const = 0;
  virtual SimTime busy_until() const = 0;
};

// Disk spin-down policies.  The paper fixes the threshold at 5 s; the
// adaptive policy (from Douglis, Krishnan & Marsh, "Thwarting the
// Power-Hungry Disk", which the paper cites) grows the threshold after
// spin-downs that turn out to be premature and shrinks it after long sleeps.
enum class SpinDownPolicy : std::uint8_t {
  kFixedThreshold = 0,
  kAdaptive = 1,
};

const char* SpinDownPolicyName(SpinDownPolicy policy);

// Per-device knobs that are simulation configuration rather than hardware
// capability.
struct DeviceOptions {
  std::uint64_t capacity_bytes = 40ull * 1024 * 1024;
  std::uint32_t block_bytes = 1024;
  // Magnetic disk: spin down after this much inactivity (5 s in the paper).
  SimTime spin_down_after_us = 5 * kUsPerSec;
  SpinDownPolicy spin_down_policy = SpinDownPolicy::kFixedThreshold;
  // Adaptive-policy bounds on the threshold.
  SimTime adaptive_min_us = kUsPerSec / 2;
  SimTime adaptive_max_us = 60 * kUsPerSec;
  // Flash card: background cleaning keeps a segment erased ahead of writes;
  // on-demand cleans only when a write finds no free slot (section 4.2).
  bool background_cleaning = true;
  // Flash card victim selection (greedy lowest-utilization is what MFFS
  // uses; cost-benefit is the LFS/eNVy-style ablation).
  CleaningPolicy cleaning_policy = CleaningPolicy::kGreedy;
  // Flash translation policy.  The log-structured default reproduces the
  // paper's MFFS model; page-diff and fat-remap are the FTL ablations.
  FtlPolicyKind ftl_policy = FtlPolicyKind::kLogStructured;
  // Route cleaning copies into their own segment (eNVy-style hot/cold
  // separation) instead of mixing them with fresh writes.
  bool separate_cleaning_segment = false;
  // Fault injection knobs (transient errors, wear-out budgets, factory bad
  // blocks).  Defaults model healthy hardware and cost nothing.
  FaultConfig fault;
};

// Rejects malformed device configurations up front instead of letting them
// surface as inf/NaN service times deep inside a sweep.  Throws SimError
// naming the offending field (zero/negative bandwidths, zero block or erase
// sizes, inconsistent NAND topology).  Every device constructor calls this,
// so hand-built devices get the same protection as CreateDevice callers.
void ValidateDeviceSpec(const DeviceSpec& spec, const DeviceOptions& options);

std::unique_ptr<StorageDevice> CreateDevice(const DeviceSpec& spec, const DeviceOptions& options);

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_STORAGE_DEVICE_H_
