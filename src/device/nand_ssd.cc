#include "src/device/nand_ssd.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace mobisim {

namespace {

SegmentManagerConfig MakeSegmentConfig(const DeviceSpec& spec,
                                       const DeviceOptions& options,
                                       const FtlPolicy* policy) {
  SegmentManagerConfig seg;
  seg.capacity_bytes = options.capacity_bytes;
  seg.segment_bytes = spec.erase_segment_bytes;  // == one NAND erase block
  seg.block_bytes = options.block_bytes;
  seg.separate_cleaning_segment =
      policy->RouteCleaningSeparately(options.separate_cleaning_segment);
  seg.cleaning_policy = options.cleaning_policy;
  seg.policy = policy;
  return seg;
}

}  // namespace

NandSsd::NandSsd(const DeviceSpec& spec, const DeviceOptions& options)
    : spec_(spec),
      options_(options),
      meter_({{"read", spec.read_w},
              {"write", spec.write_w},
              {"erase", spec.erase_w},
              {"clean", spec.write_w},
              {"idle", spec.idle_w}}),
      policy_(MakeFtlPolicy(options.ftl_policy, options.cleaning_policy)),
      ftl_hooks_(policy_->kind() != FtlPolicyKind::kLogStructured),
      segments_(MakeSegmentConfig(spec, options, policy_.get())),
      injector_(options.fault) {
  MOBISIM_CHECK(spec.kind == DeviceKind::kNandSsd);
  ValidateDeviceSpec(spec, options);
  options_.separate_cleaning_segment =
      policy_->RouteCleaningSeparately(options.separate_cleaning_segment);

  const NandTopology& nand = spec.nand;
  channels_ = nand.channels;
  units_ = nand.units();
  page_bytes_ = nand.page_bytes;
  read_page_us_ = static_cast<SimTime>(std::llround(nand.read_page_us));
  program_page_us_ = static_cast<SimTime>(std::llround(nand.program_page_us));
  const double channel_kbps = nand.channel_mbps * 1024.0;
  page_xfer_us_ = TransferTimeUs(page_bytes_, channel_kbps);
  internal_read_kbps_ =
      spec.internal_read_kbps > 0.0 ? spec.internal_read_kbps : channel_kbps;
  // GC relocates one logical block via internal copyback: read the page(s)
  // holding it and reprogram them, no bus crossing.
  const SimTime pages_per_block = static_cast<SimTime>(PagesForBytes(options.block_bytes));
  block_copy_us_ = pages_per_block * (read_page_us_ + program_page_us_);
  erase_us_ = UsFromMs(nand.erase_block_ms);
  // Reboot after power loss reads one summary page per erase block to
  // rebuild the mapping.
  mount_scan_us_ = static_cast<SimTime>(segments_.segment_count()) *
                   (read_page_us_ + page_xfer_us_);

  unit_busy_.assign(units_, 0);
  channel_busy_.assign(channels_, 0);

  const FaultConfig& fault = options.fault;
  if (fault.wear_out) {
    Rng wear_rng(fault.seed, fault_streams::kWearBudget);
    const double mean = std::max(
        1.0, static_cast<double>(spec.endurance_cycles) * fault.endurance_scale);
    for (std::uint32_t s = 0; s < segments_.segment_count(); ++s) {
      const double draw = wear_rng.Normal(mean, mean * fault.endurance_spread);
      segments_.SetEnduranceBudget(
          s, draw < 1.0 ? 1u : static_cast<std::uint32_t>(draw));
    }
  }
  if (fault.bad_block_rate > 0.0) {
    Rng bad_rng(fault.seed, fault_streams::kBadBlocks);
    constexpr std::uint32_t kMinGoodSegments = 4;
    std::uint32_t good = segments_.segment_count();
    for (std::uint32_t s = 0; s < segments_.segment_count() && good > kMinGoodSegments;
         ++s) {
      if (bad_rng.Chance(fault.bad_block_rate)) {
        segments_.RetireSegment(s);
        --good;
      }
    }
    if (segments_.bad_segment_count() > 0) {
      capacity_events_.emplace_back(0, UsableFraction());
    }
  }
}

double NandSsd::UsableFraction() const {
  return static_cast<double>(segments_.usable_blocks()) /
         static_cast<double>(segments_.total_blocks());
}

std::uint64_t NandSsd::PagesForBytes(std::uint64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return (bytes + page_bytes_ - 1) / page_bytes_;
}

std::vector<std::uint32_t> NandSsd::StripeUnits(std::uint64_t pages) const {
  std::vector<std::uint32_t> out;
  out.reserve(pages);
  for (std::uint64_t p = 0; p < pages; ++p) {
    out.push_back(static_cast<std::uint32_t>((stripe_cursor_ + p) % units_));
  }
  return out;
}

void NandSsd::Preload(std::uint64_t trace_blocks, double utilization, bool interleave) {
  MOBISIM_CHECK(utilization > 0.0 && utilization < 1.0);
  const std::uint64_t target_live =
      static_cast<std::uint64_t>(utilization * static_cast<double>(segments_.usable_blocks()));
  MOBISIM_CHECK(trace_blocks <= target_live);
  const std::uint64_t slack_segments = options_.separate_cleaning_segment ? 3 : 2;
  MOBISIM_CHECK(target_live + slack_segments * segments_.blocks_per_segment() <=
                segments_.usable_blocks());
  const std::uint64_t filler = target_live - trace_blocks;
  if (ftl_hooks_) {
    policy_->AttachMetaWindow(target_live, segments_.total_blocks() - target_live,
                              options_.block_bytes);
  }

  if (!interleave || filler == 0 || trace_blocks == 0) {
    segments_.Preload(0, trace_blocks);
    segments_.Preload(trace_blocks, filler);
    return;
  }
  std::uint64_t next_trace = 0;
  std::uint64_t next_filler = trace_blocks;
  std::int64_t error = 0;
  const std::int64_t t = static_cast<std::int64_t>(trace_blocks);
  const std::int64_t f = static_cast<std::int64_t>(filler);
  while (next_trace < trace_blocks || next_filler < trace_blocks + filler) {
    if (next_filler >= trace_blocks + filler ||
        (next_trace < trace_blocks && error < t)) {
      segments_.Preload(next_trace++, 1);
      error += f;
    } else {
      segments_.Preload(next_filler++, 1);
      error -= t;
    }
  }
}

std::uint64_t NandSsd::AvailableSlots() const {
  const std::uint64_t free = segments_.free_slots();
  return free > job_.reserved_slots ? free - job_.reserved_slots : 0;
}

bool NandSsd::CanAcceptHostBlock() const {
  if (AvailableSlots() == 0) {
    return false;
  }
  if (segments_.active_free_slots() > 0) {
    return true;
  }
  if (segments_.erased_segment_count() >= 2) {
    return true;
  }
  return segments_.erased_segment_count() >= 1 && !job_.active &&
         segments_.PickVictim() == SegmentManager::kNoSegment;
}

bool NandSsd::MaybeStartCleanJob() {
  if (job_.active) {
    return true;
  }
  if (segments_.erased_segment_count() > 1) {
    return false;
  }
  const std::uint32_t victim = segments_.PickVictim();
  if (victim == SegmentManager::kNoSegment) {
    return false;
  }
  const std::uint32_t live = segments_.VictimLiveBlocks(victim);
  if (segments_.free_slots() < live) {
    return false;
  }
  if (segments_.erased_segment_count() == 0 && segments_.cleaning_free_slots() < live) {
    return false;
  }
  job_.active = true;
  job_.victim = victim;
  job_.copy_remaining_us = static_cast<SimTime>(live) * block_copy_us_;
  job_.erase_remaining_us = erase_us_;
  job_.reserved_slots = live;
  ++counters_.clean_jobs;
  return true;
}

void NandSsd::CompleteCleanJob() {
  MOBISIM_DCHECK(job_.active);
  const std::uint32_t victim = job_.victim;
  const std::uint32_t copied = segments_.CleanSegment(victim);
  counters_.blocks_copied += copied;
  ++counters_.segment_erases;
  job_ = CleanJob{};
  if (segments_.segment_is_bad(victim)) {
    counters_.remapped_blocks += copied;
    capacity_events_.emplace_back(accounted_until_, UsableFraction());
  }
}

SimTime NandSsd::FinishCleanJobNow() {
  MOBISIM_DCHECK(job_.active);
  const SimTime copy = job_.copy_remaining_us;
  const SimTime erase = job_.erase_remaining_us;
  meter_.Accumulate(kModeClean, copy);
  meter_.Accumulate(kModeErase, erase);
  CompleteCleanJob();
  return copy + erase;
}

void NandSsd::AccountUntil(SimTime t) {
  if (t <= accounted_until_) {
    return;
  }
  SimTime available = t - accounted_until_;
  while (available > 0 && options_.background_cleaning && MaybeStartCleanJob()) {
    if (job_.copy_remaining_us > 0) {
      const SimTime spent = std::min(available, job_.copy_remaining_us);
      meter_.Accumulate(kModeClean, spent);
      job_.copy_remaining_us -= spent;
      available -= spent;
    }
    if (available > 0 && job_.copy_remaining_us == 0 && job_.erase_remaining_us > 0) {
      const SimTime spent = std::min(available, job_.erase_remaining_us);
      meter_.Accumulate(kModeErase, spent);
      job_.erase_remaining_us -= spent;
      available -= spent;
    }
    if (job_.copy_remaining_us == 0 && job_.erase_remaining_us == 0) {
      CompleteCleanJob();
    } else {
      break;
    }
  }
  meter_.Accumulate(kModeIdle, available);
  accounted_until_ = t;
}

void NandSsd::AdvanceTo(SimTime now) { AccountUntil(now); }

SimTime NandSsd::IssuePages(SimTime issue, std::uint64_t pages, bool is_read) {
  SimTime done = issue;
  SimTime bus_release = issue;
  for (std::uint64_t p = 0; p < pages; ++p) {
    const std::uint32_t u = static_cast<std::uint32_t>((stripe_cursor_ + p) % units_);
    const std::uint32_t c = u % channels_;
    SimTime end;
    if (is_read) {
      // Cell read on the plane, then the payload crosses the channel bus.
      const SimTime cell_start = std::max(issue, unit_busy_[u]);
      const SimTime cell_end = cell_start + read_page_us_;
      unit_busy_[u] = cell_end;
      const SimTime bus_start = std::max(cell_end, channel_busy_[c]);
      end = bus_start + page_xfer_us_;
      channel_busy_[c] = end;
      meter_.Accumulate(kModeRead, read_page_us_ + page_xfer_us_);
    } else {
      // Payload ships over the channel bus, then the plane programs it.
      const SimTime bus_start = std::max(issue, channel_busy_[c]);
      const SimTime bus_end = bus_start + page_xfer_us_;
      channel_busy_[c] = bus_end;
      bus_release = std::max(bus_release, bus_end);
      const SimTime prog_start = std::max(bus_end, unit_busy_[u]);
      end = prog_start + program_page_us_;
      unit_busy_[u] = end;
      meter_.Accumulate(kModeWrite, program_page_us_ + page_xfer_us_);
    }
    done = std::max(done, end);
  }
  stripe_cursor_ = static_cast<std::uint32_t>((stripe_cursor_ + pages) % units_);
  // Writes release the controller once the payload has shipped, so queued
  // writes pipeline their programs across dies; reads hold it only for the
  // command issue (the per-channel bus queues serialize the returns).
  cmd_busy_ = std::max(cmd_busy_, is_read ? issue : bus_release);
  return done;
}

SimTime NandSsd::ServiceRead(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  const SimTime cmd_start = std::max(now, cmd_busy_);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.read_overhead_ms;
  const SimTime overhead_us = UsFromMs(overhead_ms);
  meter_.Accumulate(kModeRead, overhead_us);
  const SimTime issue = cmd_start + overhead_us;
  cmd_busy_ = issue;
  SimTime done = IssuePages(issue, PagesForBytes(bytes), /*is_read=*/true);
  if (ftl_hooks_) {
    std::uint64_t extra = 0;
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      extra += policy_->ExtraReadBytes(rec.lba + i);
    }
    if (extra > 0) {
      const SimTime merge_us = TransferTimeUs(extra, internal_read_kbps_);
      meter_.Accumulate(kModeRead, merge_us);
      done += merge_us;
    }
  }
  busy_until_ = std::max(busy_until_, done);
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.reads;
  counters_.bytes_read += bytes;
  return done - now;
}

SimTime NandSsd::ServiceWrite(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  SimTime stall = 0;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  std::uint64_t programmed = bytes;
  std::uint64_t merge_reads = 0;

  if (!ftl_hooks_) {
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      if (options_.background_cleaning) {
        MaybeStartCleanJob();
      }
      while (!CanAcceptHostBlock()) {
        const bool job_ready = MaybeStartCleanJob();
        MOBISIM_CHECK(job_ready && "nand ssd wedged: no free space and nothing cleanable");
        stall += FinishCleanJobNow();
      }
      segments_.WriteBlock(rec.lba + i);
    }
  } else {
    programmed = 0;
    for (std::uint32_t i = 0; i < rec.block_count; ++i) {
      const std::uint64_t lba = rec.lba + i;
      const HostWritePlan plan =
          policy_->PlanHostWrite(lba, segments_.IsMapped(lba), options_.block_bytes);
      programmed += plan.programmed_bytes;
      merge_reads += plan.merge_read_bytes;
      for (std::uint32_t k = 0; k < plan.append_count; ++k) {
        if (options_.background_cleaning) {
          MaybeStartCleanJob();
        }
        while (!CanAcceptHostBlock()) {
          const bool job_ready = MaybeStartCleanJob();
          MOBISIM_CHECK(job_ready &&
                        "nand ssd wedged: no free space and nothing cleanable");
          stall += FinishCleanJobNow();
        }
        segments_.WriteBlock(plan.appends[k]);
      }
    }
  }
  if (!options_.background_cleaning) {
    while (segments_.erased_segment_count() <= 1 && MaybeStartCleanJob()) {
      stall += FinishCleanJobNow();
    }
  }
  if (stall > 0) {
    ++counters_.write_stalls;
    counters_.stall_time_us += stall;
  }

  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  const SimTime overhead_us = UsFromMs(overhead_ms);
  meter_.Accumulate(kModeWrite, overhead_us);
  // A synchronous cleaning stall blocks the whole device before the command
  // can even issue.
  const SimTime issue = std::max(now, cmd_busy_) + stall + overhead_us;
  cmd_busy_ = issue;
  SimTime done = IssuePages(issue, PagesForBytes(programmed), /*is_read=*/false);
  if (merge_reads > 0) {
    const SimTime merge_us = TransferTimeUs(merge_reads, internal_read_kbps_);
    meter_.Accumulate(kModeRead, merge_us);
    done += merge_us;
  }
  busy_until_ = std::max(busy_until_, done);
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return done - now;
}

SimTime NandSsd::FailedWrite(SimTime now, const BlockRecord& rec) {
  // The attempt ships its payload and programs pages but commits no mapping
  // update: no slots consumed, no cleaning, no stall; a retry replays the
  // identical update.
  AccountUntil(now);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const double overhead_ms =
      rec.file_id == last_file_ ? spec_.sequential_overhead_ms : spec_.write_overhead_ms;
  const SimTime overhead_us = UsFromMs(overhead_ms);
  meter_.Accumulate(kModeWrite, overhead_us);
  const SimTime issue = std::max(now, cmd_busy_) + overhead_us;
  cmd_busy_ = issue;
  const SimTime done = IssuePages(issue, PagesForBytes(bytes), /*is_read=*/false);
  busy_until_ = std::max(busy_until_, done);
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = rec.file_id;
  ++counters_.writes;
  counters_.bytes_written += bytes;
  return done - now;
}

IoResult NandSsd::ReadOp(SimTime now, const BlockRecord& rec) {
  // Reads mutate no logical state, so the error draw can follow the service.
  const SimTime t = ServiceRead(now, rec);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

IoResult NandSsd::WriteOp(SimTime now, const BlockRecord& rec) {
  // Writes mutate the log, so the error is drawn *before* committing.
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {FailedWrite(now, rec), IoStatus::kTransientError};
  }
  return {ServiceWrite(now, rec), IoStatus::kOk};
}

SimTime NandSsd::PowerLoss(SimTime now) {
  AccountUntil(now);
  // In-flight cell operations and transfers are abandoned.
  busy_until_ = std::min(busy_until_, now);
  cmd_busy_ = std::min(cmd_busy_, now);
  for (SimTime& t : unit_busy_) {
    t = std::min(t, now);
  }
  for (SimTime& t : channel_busy_) {
    t = std::min(t, now);
  }
  SimTime recovery = mount_scan_us_;
  meter_.Accumulate(kModeRead, mount_scan_us_);
  if (job_.active) {
    if (job_.copy_remaining_us == 0) {
      recovery += erase_us_;
      meter_.Accumulate(kModeErase, erase_us_);
      CompleteCleanJob();
    } else {
      job_ = CleanJob{};
    }
  }
  busy_until_ = now + recovery;
  cmd_busy_ = busy_until_;
  accounted_until_ = std::max(accounted_until_, busy_until_);
  last_file_ = ~std::uint32_t{0};
  return recovery;
}

void NandSsd::Trim(SimTime now, const BlockRecord& rec) {
  AccountUntil(now);
  for (std::uint32_t i = 0; i < rec.block_count; ++i) {
    if (ftl_hooks_) {
      policy_->OnTrim(rec.lba + i);
    }
    segments_.TrimBlock(rec.lba + i);
  }
}

void NandSsd::Finish(SimTime end) { AccountUntil(std::max(end, busy_until_)); }

const DeviceCounters& NandSsd::counters() const {
  counters_.segment_erase_stats = segments_.EraseCountStats();
  counters_.bad_segments = segments_.bad_segment_count();
  counters_.usable_blocks = segments_.usable_blocks();
  counters_.physical_blocks = segments_.total_blocks();
  const FtlCounters& ftl = policy_->counters();
  counters_.diff_writes = ftl.diff_writes;
  counters_.diff_merges = ftl.diff_merges;
  counters_.diff_merge_reads = ftl.diff_merge_reads;
  counters_.remap_table_hits = ftl.remap_table_hits;
  counters_.remap_table_wraps = ftl.remap_table_wraps;
  return counters_;
}

}  // namespace mobisim
