#include "src/device/geometric_disk.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace mobisim {

double DiskGeometry::SeekMs(std::uint32_t distance_cylinders) const {
  if (distance_cylinders == 0) {
    return 0.0;
  }
  return seek_a_ms + seek_b_ms * std::sqrt(static_cast<double>(distance_cylinders)) +
         seek_c_ms * static_cast<double>(distance_cylinders);
}

DiskGeometry Cu140Geometry() {
  // 40-Mbyte 2.5-inch drive: ~980 cylinders x 4 heads x 56 sectors gives
  // ~107 MB raw; scale cylinders down to land near 40 MB formatted.
  DiskGeometry g;
  g.cylinders = 368;
  g.heads = 4;
  g.sectors_per_track = 56;
  g.rpm = 3600.0;
  g.seek_a_ms = 4.0;
  g.seek_b_ms = 1.0;
  g.seek_c_ms = 0.02;
  return g;
}

DiskGeometry KittyhawkGeometry() {
  // 20-Mbyte 1.3-inch drive: fewer, shorter tracks and slower positioning.
  DiskGeometry g;
  g.cylinders = 560;
  g.heads = 2;
  g.sectors_per_track = 36;
  g.rpm = 3200.0;
  g.seek_a_ms = 6.0;
  g.seek_b_ms = 1.6;
  g.seek_c_ms = 0.03;
  g.head_switch_ms = 1.5;
  return g;
}

GeometricDisk::GeometricDisk(const DeviceSpec& spec, const DiskGeometry& geometry,
                             const DeviceOptions& options)
    : spec_(spec),
      geometry_(geometry),
      options_(options),
      meter_({{"read", spec.read_w},
              {"write", spec.write_w},
              {"idle", spec.idle_w},
              {"sleep", spec.sleep_w},
              {"spinup", spec.spinup_w}}),
      injector_(options.fault) {
  MOBISIM_CHECK(spec.kind == DeviceKind::kMagneticDisk);
  ValidateDeviceSpec(spec, options);
  MOBISIM_CHECK(geometry.cylinders > 0 && geometry.heads > 0 &&
                geometry.sectors_per_track > 0);
}

GeometricDisk::Chs GeometricDisk::ToChs(std::uint64_t sector_index) const {
  Chs chs;
  const std::uint64_t per_cylinder =
      static_cast<std::uint64_t>(geometry_.heads) * geometry_.sectors_per_track;
  chs.cylinder = static_cast<std::uint32_t>((sector_index / per_cylinder) % geometry_.cylinders);
  chs.head = static_cast<std::uint32_t>((sector_index % per_cylinder) /
                                        geometry_.sectors_per_track);
  chs.sector = static_cast<std::uint32_t>(sector_index % geometry_.sectors_per_track);
  return chs;
}

SimTime GeometricDisk::MechanicalTimeUs(std::uint64_t sector, std::uint64_t sectors,
                                        std::uint32_t current_cylinder,
                                        SimTime start_time) const {
  const Chs target = ToChs(sector);
  const std::uint32_t distance = target.cylinder > current_cylinder
                                     ? target.cylinder - current_cylinder
                                     : current_cylinder - target.cylinder;
  double time_ms = geometry_.controller_ms + geometry_.SeekMs(distance);

  // Rotational latency: the platter's angular position advances continuously
  // with wall-clock time; we wait for the target sector to come around after
  // the seek completes.
  const double rev_ms = geometry_.revolution_ms();
  const double sector_ms = rev_ms / geometry_.sectors_per_track;
  const double arrival_ms = MsFromUs(start_time) + time_ms;
  const double angle_now = std::fmod(arrival_ms, rev_ms) / rev_ms;  // [0, 1)
  const double angle_target =
      static_cast<double>(target.sector) / geometry_.sectors_per_track;
  double wait = angle_target - angle_now;
  if (wait < 0.0) {
    wait += 1.0;
  }
  time_ms += wait * rev_ms;

  // Transfer, paying head switches and track-to-track seeks at boundaries.
  std::uint64_t remaining = sectors;
  Chs pos = target;
  while (remaining > 0) {
    const std::uint64_t in_track =
        std::min<std::uint64_t>(remaining, geometry_.sectors_per_track - pos.sector);
    time_ms += static_cast<double>(in_track) * sector_ms;
    remaining -= in_track;
    if (remaining == 0) {
      break;
    }
    pos.sector = 0;
    if (pos.head + 1 < geometry_.heads) {
      ++pos.head;
      time_ms += geometry_.head_switch_ms;
    } else {
      pos.head = 0;
      pos.cylinder = (pos.cylinder + 1) % geometry_.cylinders;
      time_ms += geometry_.SeekMs(1);
    }
  }
  return UsFromMs(time_ms);
}

void GeometricDisk::AccountUntil(SimTime t) {
  if (t <= accounted_until_) {
    return;
  }
  if (spinning_) {
    const SimTime spin_down_at = idle_since_ + options_.spin_down_after_us;
    if (t <= spin_down_at) {
      meter_.Accumulate(kModeIdle, t - accounted_until_);
    } else {
      if (spin_down_at > accounted_until_) {
        meter_.Accumulate(kModeIdle, spin_down_at - accounted_until_);
      }
      spinning_ = false;
      meter_.Accumulate(kModeSleep, t - std::max(spin_down_at, accounted_until_));
    }
  } else {
    meter_.Accumulate(kModeSleep, t - accounted_until_);
  }
  accounted_until_ = t;
}

void GeometricDisk::AdvanceTo(SimTime now) { AccountUntil(now); }

bool GeometricDisk::IsSpinningAt(SimTime now) const {
  if (!spinning_) {
    return false;
  }
  return now < idle_since_ + options_.spin_down_after_us;
}

SimTime GeometricDisk::ServiceOp(SimTime now, const BlockRecord& rec, bool is_read) {
  AccountUntil(now);
  SimTime t = std::max(now, busy_until_);

  if (!spinning_) {
    const SimTime spinup_us = UsFromMs(spec_.spinup_ms);
    meter_.Accumulate(kModeSpinup, spinup_us);
    t += spinup_us;
    spinning_ = true;
    ++counters_.spinups;
    // Heads park at the landing zone (cylinder 0 by convention).
    head_cylinder_ = 0;
  }

  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rec.block_count) * options_.block_bytes;
  const std::uint64_t first_sector =
      rec.lba * options_.block_bytes / geometry_.sector_bytes;
  const std::uint64_t sectors =
      (bytes + geometry_.sector_bytes - 1) / geometry_.sector_bytes;
  const SimTime service =
      MechanicalTimeUs(first_sector % geometry_.total_sectors(),
                       std::max<std::uint64_t>(sectors, 1), head_cylinder_, t);
  meter_.Accumulate(is_read ? kModeRead : kModeWrite, service);
  t += service;

  head_cylinder_ = ToChs((first_sector + sectors - 1) % geometry_.total_sectors()).cylinder;
  busy_until_ = t;
  accounted_until_ = std::max(accounted_until_, t);
  idle_since_ = t;

  if (is_read) {
    ++counters_.reads;
    counters_.bytes_read += bytes;
  } else {
    ++counters_.writes;
    counters_.bytes_written += bytes;
  }
  return t - now;
}

// As in MagneticDisk: a disk holds no logical state, so a failed attempt is
// a full-cost service whose data did not land.
IoResult GeometricDisk::ReadOp(SimTime now, const BlockRecord& rec) {
  const SimTime t = ServiceOp(now, rec, /*is_read=*/true);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

IoResult GeometricDisk::WriteOp(SimTime now, const BlockRecord& rec) {
  const SimTime t = ServiceOp(now, rec, /*is_read=*/false);
  if (injector_.NextError()) {
    ++counters_.transient_errors;
    return {t, IoStatus::kTransientError};
  }
  return {t, IoStatus::kOk};
}

SimTime GeometricDisk::PowerLoss(SimTime now) {
  AccountUntil(now);
  spinning_ = false;
  busy_until_ = std::min(busy_until_, now);
  idle_since_ = std::min(idle_since_, now);
  head_cylinder_ = 0;
  return 0;
}

void GeometricDisk::Trim(SimTime now, const BlockRecord& rec) {
  (void)now;
  (void)rec;
}

void GeometricDisk::Finish(SimTime end) { AccountUntil(std::max(end, busy_until_)); }

}  // namespace mobisim
