#include "src/device/storage_device.h"

#include "src/device/flash_card.h"
#include "src/device/flash_disk.h"
#include "src/device/magnetic_disk.h"
#include "src/util/check.h"

namespace mobisim {

std::unique_ptr<StorageDevice> CreateDevice(const DeviceSpec& spec,
                                            const DeviceOptions& options) {
  switch (spec.kind) {
    case DeviceKind::kMagneticDisk:
      return std::make_unique<MagneticDisk>(spec, options);
    case DeviceKind::kFlashDisk:
      return std::make_unique<FlashDisk>(spec, options);
    case DeviceKind::kFlashCard:
      return std::make_unique<FlashCard>(spec, options);
  }
  MOBISIM_CHECK(false && "unknown device kind");
  return nullptr;
}

}  // namespace mobisim
