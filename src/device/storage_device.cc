#include "src/device/storage_device.h"

#include <cmath>

#include "src/device/flash_card.h"
#include "src/device/flash_disk.h"
#include "src/device/magnetic_disk.h"
#include "src/device/nand_ssd.h"
#include "src/util/check.h"

namespace mobisim {

// A violated bound here names the offending field so a sweep's _error row
// points at the spec key to fix, not at arithmetic fallout three layers down.
#define MOBISIM_SPEC_FIELD(cond, field)                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::mobisim::CheckFailed("device spec field '" field "' invalid: " #cond, \
                             __FILE__, __LINE__);                             \
    }                                                                         \
  } while (0)

void ValidateDeviceSpec(const DeviceSpec& spec, const DeviceOptions& options) {
  MOBISIM_SPEC_FIELD(!spec.name.empty(), "name");
  MOBISIM_SPEC_FIELD(options.block_bytes > 0, "block_bytes");
  MOBISIM_SPEC_FIELD(options.capacity_bytes > 0, "capacity_bytes");
  MOBISIM_SPEC_FIELD(std::isfinite(spec.read_kbps) && spec.read_kbps > 0.0,
                     "read_kbps");
  MOBISIM_SPEC_FIELD(std::isfinite(spec.write_kbps) && spec.write_kbps > 0.0,
                     "write_kbps");
  MOBISIM_SPEC_FIELD(
      std::isfinite(spec.internal_read_kbps) && spec.internal_read_kbps >= 0.0,
      "internal_read_kbps");
  MOBISIM_SPEC_FIELD(
      std::isfinite(spec.internal_write_kbps) && spec.internal_write_kbps >= 0.0,
      "internal_write_kbps");
  MOBISIM_SPEC_FIELD(
      std::isfinite(spec.read_overhead_ms) && spec.read_overhead_ms >= 0.0,
      "read_overhead_ms");
  MOBISIM_SPEC_FIELD(
      std::isfinite(spec.write_overhead_ms) && spec.write_overhead_ms >= 0.0,
      "write_overhead_ms");
  MOBISIM_SPEC_FIELD(std::isfinite(spec.sequential_overhead_ms) &&
                         spec.sequential_overhead_ms >= 0.0,
                     "sequential_overhead_ms");
  if (spec.kind != DeviceKind::kMagneticDisk) {
    // Every flash-class device erases in segments; a zero segment size makes
    // SegmentManager's geometry degenerate.
    MOBISIM_SPEC_FIELD(spec.erase_segment_bytes > 0, "erase_segment_bytes");
    MOBISIM_SPEC_FIELD(spec.endurance_cycles > 0, "endurance_cycles");
  }
  if (spec.kind == DeviceKind::kFlashCard) {
    MOBISIM_SPEC_FIELD(std::isfinite(spec.erase_ms_per_segment) &&
                           spec.erase_ms_per_segment > 0.0,
                       "erase_ms_per_segment");
  }
  if (spec.kind == DeviceKind::kNandSsd) {
    const NandTopology& n = spec.nand;
    MOBISIM_SPEC_FIELD(n.channels > 0, "nand.channels");
    MOBISIM_SPEC_FIELD(n.dies_per_channel > 0, "nand.dies");
    MOBISIM_SPEC_FIELD(n.planes_per_die > 0, "nand.planes");
    MOBISIM_SPEC_FIELD(n.page_bytes > 0, "nand.page_bytes");
    MOBISIM_SPEC_FIELD(n.pages_per_block > 0, "nand.pages_per_block");
    MOBISIM_SPEC_FIELD(std::isfinite(n.read_page_us) && n.read_page_us > 0.0,
                       "nand.read_us");
    MOBISIM_SPEC_FIELD(
        std::isfinite(n.program_page_us) && n.program_page_us > 0.0,
        "nand.program_us");
    MOBISIM_SPEC_FIELD(
        std::isfinite(n.erase_block_ms) && n.erase_block_ms > 0.0,
        "nand.erase_ms");
    MOBISIM_SPEC_FIELD(std::isfinite(n.channel_mbps) && n.channel_mbps > 0.0,
                       "nand.channel_mbps");
    // The GC erase unit IS the NAND erase block; letting them diverge would
    // silently split the timing model from the mapping model.
    MOBISIM_SPEC_FIELD(spec.erase_segment_bytes == n.block_bytes(),
                       "erase_segment_bytes");
  }
}

#undef MOBISIM_SPEC_FIELD

std::unique_ptr<StorageDevice> CreateDevice(const DeviceSpec& spec,
                                            const DeviceOptions& options) {
  switch (spec.kind) {
    case DeviceKind::kMagneticDisk:
      return std::make_unique<MagneticDisk>(spec, options);
    case DeviceKind::kFlashDisk:
      return std::make_unique<FlashDisk>(spec, options);
    case DeviceKind::kFlashCard:
      return std::make_unique<FlashCard>(spec, options);
    case DeviceKind::kNandSsd:
      return std::make_unique<NandSsd>(spec, options);
  }
  MOBISIM_CHECK(false && "unknown device kind");
  return nullptr;
}

}  // namespace mobisim
