// Magnetic hard disk with spin-down power management.
//
// Models the Caviar Ultralite CU140 / HP Kittyhawk class of mobile drives:
// the disk idles (platters spinning) after each operation, spins down after
// a configurable inactivity threshold (5 s in the paper), and pays a
// spin-up delay and elevated spin-up power when the next operation arrives.
// Seeks follow the paper's assumption: repeated accesses to the same file
// need no seek, any other access pays the average random-access overhead.
#ifndef MOBISIM_SRC_DEVICE_MAGNETIC_DISK_H_
#define MOBISIM_SRC_DEVICE_MAGNETIC_DISK_H_

#include "src/device/storage_device.h"

namespace mobisim {

class MagneticDisk : public StorageDevice {
 public:
  MagneticDisk(const DeviceSpec& spec, const DeviceOptions& options);

  void AdvanceTo(SimTime now) override;
  IoResult ReadOp(SimTime now, const BlockRecord& rec) override;
  IoResult WriteOp(SimTime now, const BlockRecord& rec) override;
  SimTime PowerLoss(SimTime now) override;
  void Trim(SimTime now, const BlockRecord& rec) override;
  void Finish(SimTime end) override;

  const EnergyMeter& energy() const override { return meter_; }
  const DeviceCounters& counters() const override { return counters_; }
  const DeviceSpec& spec() const override { return spec_; }
  SimTime busy_until() const override { return busy_until_; }

  // True if the platters would still be spinning at `now` (no state change).
  // The storage system uses this to decide whether a write can be deferred
  // into SRAM without waking the disk.
  bool IsSpinningAt(SimTime now) const;

  // Current spin-down threshold (fixed, or the adaptive policy's latest).
  SimTime spin_down_threshold_us() const { return threshold_us_; }

 private:
  enum Mode : std::size_t { kModeRead = 0, kModeWrite, kModeIdle, kModeSleep, kModeSpinup };

  // Accounts idle/sleep energy (including a spin-down transition) up to `t`.
  void AccountUntil(SimTime t);
  SimTime ServiceOp(SimTime now, const BlockRecord& rec, bool is_read);
  // Adaptive policy: adjusts the threshold based on how long the completed
  // sleep lasted relative to the spin-up break-even time.
  void AdaptThreshold(SimTime sleep_duration_us);

  DeviceSpec spec_;
  DeviceOptions options_;
  EnergyMeter meter_;
  DeviceCounters counters_;
  FaultInjector injector_;

  SimTime accounted_until_ = 0;
  SimTime busy_until_ = 0;
  // End of the last mechanical activity; the spin-down countdown starts here.
  SimTime idle_since_ = 0;
  bool spinning_ = true;
  SimTime threshold_us_ = 0;
  SimTime slept_since_ = 0;  // when the current sleep began
  std::uint32_t last_file_ = ~std::uint32_t{0};
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_MAGNETIC_DISK_H_
