// Flash disk emulator (SunDisk SDP series).
//
// Block-interface flash with 512-byte erase sectors.  The device never
// copies data internally, so its performance is independent of storage
// utilization (section 5.2).  Two write paths exist:
//   - coupled (SDP5/SDP10): every write erases in place; `write_kbps`
//     already folds the erase in (75 KB/s for the SDP5).
//   - decoupled (SDP5A): sectors invalidated by overwrites are erased in the
//     background at `erase_kbps` whenever the device is otherwise idle, and
//     writes that land entirely in pre-erased sectors run at
//     `pre_erased_write_kbps` (section 5.3).
#ifndef MOBISIM_SRC_DEVICE_FLASH_DISK_H_
#define MOBISIM_SRC_DEVICE_FLASH_DISK_H_

#include <vector>

#include "src/device/storage_device.h"

namespace mobisim {

class FlashDisk : public StorageDevice {
 public:
  FlashDisk(const DeviceSpec& spec, const DeviceOptions& options);

  // Marks `live_blocks` logical blocks (starting at LBA 0) as containing
  // data, leaving `capacity - live` pre-erased.  Call before the first I/O.
  void Preload(std::uint64_t live_blocks);

  // Enables/disables the SDP5A decoupled-erasure path (enabled by default
  // when the spec advertises it).  Disabling reproduces the paper's
  // synchronous baseline for the section 5.3 comparison.
  void set_asynchronous_erasure(bool enabled);
  bool asynchronous_erasure() const { return async_erase_; }

  void AdvanceTo(SimTime now) override;
  IoResult ReadOp(SimTime now, const BlockRecord& rec) override;
  IoResult WriteOp(SimTime now, const BlockRecord& rec) override;
  SimTime PowerLoss(SimTime now) override;
  void Trim(SimTime now, const BlockRecord& rec) override;
  void Finish(SimTime end) override;

  const EnergyMeter& energy() const override { return meter_; }
  const DeviceCounters& counters() const override { return counters_; }
  const DeviceSpec& spec() const override { return spec_; }
  SimTime busy_until() const override { return busy_until_; }

  std::uint64_t pre_erased_bytes() const { return pre_erased_bytes_; }
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }

 private:
  enum Mode : std::size_t { kModeRead = 0, kModeWrite, kModeErase, kModeIdle };

  void AccountUntil(SimTime t);
  SimTime ServiceRead(SimTime now, const BlockRecord& rec);
  SimTime ServiceWrite(SimTime now, const BlockRecord& rec);
  // Time/energy of a write attempt that fails before committing any sector.
  SimTime FailedWrite(SimTime now, const BlockRecord& rec);

  DeviceSpec spec_;
  DeviceOptions options_;
  EnergyMeter meter_;
  DeviceCounters counters_;
  FaultInjector injector_;

  bool async_erase_ = false;
  SimTime accounted_until_ = 0;
  SimTime busy_until_ = 0;
  std::uint32_t last_file_ = ~std::uint32_t{0};

  std::vector<bool> mapped_;          // per-LBA: contains live data
  std::uint64_t live_bytes_ = 0;
  std::uint64_t pre_erased_bytes_ = 0;  // erased, ready for fast writes
  std::uint64_t dirty_bytes_ = 0;       // invalidated, awaiting erasure
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_FLASH_DISK_H_
