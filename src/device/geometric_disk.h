// Geometry-based magnetic-disk model.
//
// The paper's simulator uses average seek and rotational costs (section 4.2
// lists this among its simplifying assumptions).  This model implements the
// detailed alternative, in the style of Ruemmler & Wilkes' disk-modelling
// work the paper draws its hp traces from: LBAs map to
// cylinder/head/sector; seeks follow an a + b*sqrt(d) + c*d curve over
// cylinder distance; rotational latency is computed from the platter's
// actual angular position at the end of the seek; transfers pay head-switch
// and track-to-track costs when they cross track boundaries.
//
// The spin-down power management and energy accounting match MagneticDisk,
// so the two models are directly comparable (bench_ablation_seek_model).
#ifndef MOBISIM_SRC_DEVICE_GEOMETRIC_DISK_H_
#define MOBISIM_SRC_DEVICE_GEOMETRIC_DISK_H_

#include "src/device/storage_device.h"

namespace mobisim {

struct DiskGeometry {
  std::uint32_t cylinders = 980;
  std::uint32_t heads = 4;
  std::uint32_t sectors_per_track = 56;
  std::uint32_t sector_bytes = 512;
  double rpm = 3600.0;
  // Seek time over a distance of d cylinders: a + b*sqrt(d) + c*d (0 for
  // d == 0).
  double seek_a_ms = 3.0;
  double seek_b_ms = 0.5;
  double seek_c_ms = 0.008;
  double head_switch_ms = 1.0;
  double controller_ms = 0.5;

  std::uint64_t total_sectors() const {
    return static_cast<std::uint64_t>(cylinders) * heads * sectors_per_track;
  }
  std::uint64_t capacity_bytes() const { return total_sectors() * sector_bytes; }
  double revolution_ms() const { return 60000.0 / rpm; }
  double SeekMs(std::uint32_t distance_cylinders) const;
};

// Geometry presets sized to the paper's drives.
DiskGeometry Cu140Geometry();
DiskGeometry KittyhawkGeometry();

class GeometricDisk : public StorageDevice {
 public:
  // `spec` supplies power numbers and the spin-up profile; all timing comes
  // from `geometry`.
  GeometricDisk(const DeviceSpec& spec, const DiskGeometry& geometry,
                const DeviceOptions& options);

  void AdvanceTo(SimTime now) override;
  IoResult ReadOp(SimTime now, const BlockRecord& rec) override;
  IoResult WriteOp(SimTime now, const BlockRecord& rec) override;
  SimTime PowerLoss(SimTime now) override;
  void Trim(SimTime now, const BlockRecord& rec) override;
  void Finish(SimTime end) override;

  const EnergyMeter& energy() const override { return meter_; }
  const DeviceCounters& counters() const override { return counters_; }
  const DeviceSpec& spec() const override { return spec_; }
  SimTime busy_until() const override { return busy_until_; }

  bool IsSpinningAt(SimTime now) const;
  const DiskGeometry& geometry() const { return geometry_; }

  // Mechanical time (us) to service `sectors` sectors starting at `sector`,
  // with the heads currently at `current_cylinder` and the platter at the
  // angular position implied by `start_time`.  Exposed for tests.
  SimTime MechanicalTimeUs(std::uint64_t sector, std::uint64_t sectors,
                           std::uint32_t current_cylinder, SimTime start_time) const;

 private:
  enum Mode : std::size_t { kModeRead = 0, kModeWrite, kModeIdle, kModeSleep, kModeSpinup };

  struct Chs {
    std::uint32_t cylinder = 0;
    std::uint32_t head = 0;
    std::uint32_t sector = 0;
  };
  Chs ToChs(std::uint64_t sector_index) const;

  void AccountUntil(SimTime t);
  SimTime ServiceOp(SimTime now, const BlockRecord& rec, bool is_read);

  DeviceSpec spec_;
  DiskGeometry geometry_;
  DeviceOptions options_;
  EnergyMeter meter_;
  DeviceCounters counters_;
  FaultInjector injector_;

  SimTime accounted_until_ = 0;
  SimTime busy_until_ = 0;
  SimTime idle_since_ = 0;
  bool spinning_ = true;
  std::uint32_t head_cylinder_ = 0;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_DEVICE_GEOMETRIC_DISK_H_
