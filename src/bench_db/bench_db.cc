#include "src/bench_db/bench_db.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/atomic_file.h"

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

// SHA and spec name become path components; reject anything that could
// escape the store or collide with the manifest.
bool SafePathComponent(const std::string& s) {
  if (s.empty() || s == "." || s == ".." || s == "index") {
    return false;
  }
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<StoredRun> LoadRunFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  StoredRun run;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    auto row = RowFromJson(line, &parse_error);
    if (!row) {
      SetError(error, path + ":" + std::to_string(line_no) + ": " + parse_error);
      return std::nullopt;
    }
    if (IsMetaRow(*row)) {
      if (line_no != 1) {
        SetError(error, path + ":" + std::to_string(line_no) +
                            ": metadata line not at start of file");
        return std::nullopt;
      }
      run.meta = *MetaFromRow(*row);
      run.has_meta = true;
      continue;
    }
    run.rows.push_back(std::move(*row));
  }
  return run;
}

std::string BenchDb::RunPath(const std::string& git_sha,
                             const std::string& spec_name) const {
  return root_ + "/" + git_sha + "/" + spec_name + ".jsonl";
}

std::optional<std::string> BenchDb::StoreRun(RunMeta meta,
                                             const std::vector<ResultRow>& rows,
                                             std::string* error) {
  if (!SafePathComponent(meta.git_sha)) {
    SetError(error, "bad git sha '" + meta.git_sha + "' for a store path");
    return std::nullopt;
  }
  if (!SafePathComponent(meta.spec_name)) {
    SetError(error, "bad spec name '" + meta.spec_name + "' for a store path");
    return std::nullopt;
  }
  meta.points = rows.size();

  const std::string path = RunPath(meta.git_sha, meta.spec_name);
  std::error_code ec;
  std::filesystem::create_directories(root_ + "/" + meta.git_sha, ec);
  if (ec) {
    SetError(error, "cannot create " + root_ + "/" + meta.git_sha + ": " + ec.message());
    return std::nullopt;
  }

  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      SetError(error, "cannot write " + path);
      return std::nullopt;
    }
    out << RowToJson(MetaToRow(meta)) << "\n";
    for (const ResultRow& row : rows) {
      out << RowToJson(row) << "\n";
    }
    if (!out) {
      SetError(error, "write failed for " + path);
      return std::nullopt;
    }
  }

  std::ofstream index(root_ + "/index.jsonl", std::ios::app);
  if (!index) {
    SetError(error, "cannot append to " + root_ + "/index.jsonl");
    return std::nullopt;
  }
  index << RowToJson(MetaToRow(meta)) << "\n";
  if (!index) {
    SetError(error, "write failed for " + root_ + "/index.jsonl");
    return std::nullopt;
  }
  return path;
}

namespace {

// Global point index of a data row, or nullopt for rows without one (those
// cannot be merged incrementally and are rejected by MergeRun).
std::optional<std::uint64_t> RowPointIndex(const ResultRow& row) {
  const ResultField* field = row.Find("point");
  if (field == nullptr || field->quoted) {
    return std::nullopt;
  }
  const double value = row.Number("point", -1.0);
  if (value < 0.0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

bool IsErrorRow(const ResultRow& row) { return row.Find("_error") != nullptr; }

}  // namespace

std::optional<std::string> BenchDb::MergeRun(RunMeta meta,
                                             const std::vector<ResultRow>& rows,
                                             std::string* error) {
  const std::string path = RunPath(meta.git_sha, meta.spec_name);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return StoreRun(std::move(meta), rows, error);
  }
  std::string load_error;
  auto existing = LoadRunFile(path, &load_error);
  if (!existing) {
    SetError(error, "merge target " + path + ": " + load_error);
    return std::nullopt;
  }
  if (existing->has_meta && !meta.spec_hash.empty() &&
      existing->meta.spec_hash != meta.spec_hash) {
    SetError(error, path + ": spec fingerprint mismatch (stored " +
                        existing->meta.spec_hash + ", incoming " + meta.spec_hash +
                        "); refusing to merge rows of a different experiment");
    return std::nullopt;
  }

  // Union by global point index; point order in the merged file.
  std::map<std::uint64_t, ResultRow> merged;
  for (ResultRow& row : existing->rows) {
    const auto index = RowPointIndex(row);
    if (!index) {
      SetError(error, path + ": stored data row without a point index");
      return std::nullopt;
    }
    merged.emplace(*index, std::move(row));
  }
  bool changed = false;
  for (const ResultRow& row : rows) {
    const auto index = RowPointIndex(row);
    if (!index) {
      SetError(error, "incoming row without a point index cannot be merged");
      return std::nullopt;
    }
    const auto it = merged.find(*index);
    if (it == merged.end()) {
      merged.emplace(*index, row);
      changed = true;
      continue;
    }
    const std::string stored_json = RowToJson(it->second);
    const std::string incoming_json = RowToJson(row);
    if (stored_json == incoming_json) {
      continue;  // idempotent re-merge
    }
    if (IsErrorRow(it->second) && !IsErrorRow(row)) {
      it->second = row;  // a retry succeeded: the clean row wins
      changed = true;
    } else if (!IsErrorRow(it->second) && IsErrorRow(row)) {
      // A stale retry failed after the point already succeeded: keep success.
    } else if (IsErrorRow(it->second)) {
      // Both failed: keep the newer message (later attempt).
      it->second = row;
      changed = true;
    } else {
      SetError(error, "point " + std::to_string(*index) +
                          ": conflicting non-error rows; these are not shards "
                          "of the same deterministic sweep");
      return std::nullopt;
    }
  }
  if (!changed) {
    return path;  // nothing to write: re-merging changes nothing, byte for byte
  }

  // The run keeps its original identity (created / host); only the row set
  // and point count move.
  RunMeta header = existing->has_meta ? existing->meta : meta;
  header.points = merged.size();
  std::ostringstream out;
  out << RowToJson(MetaToRow(header)) << "\n";
  for (const auto& [index, row] : merged) {
    (void)index;
    out << RowToJson(row) << "\n";
  }
  std::string write_error;
  if (!WriteFileAtomic(path, out.str(), &write_error)) {
    SetError(error, write_error);
    return std::nullopt;
  }

  // Update (not append) the manifest entry so Verify() keeps passing and
  // repeated merges never grow the index.
  std::vector<RunMeta> entries = ReadIndex(nullptr);
  bool found = false;
  for (RunMeta& entry : entries) {
    if (entry.git_sha == header.git_sha && entry.spec_name == header.spec_name) {
      entry = header;
      found = true;
    }
  }
  if (!found) {
    entries.push_back(header);
  }
  std::ostringstream index_out;
  for (const RunMeta& entry : entries) {
    index_out << RowToJson(MetaToRow(entry)) << "\n";
  }
  if (!WriteFileAtomic(root_ + "/index.jsonl", index_out.str(), &write_error)) {
    SetError(error, write_error);
    return std::nullopt;
  }
  return path;
}

std::vector<RunMeta> BenchDb::ReadIndex(std::string* error) const {
  std::vector<RunMeta> entries;
  std::ifstream in(root_ + "/index.jsonl");
  if (!in) {
    return entries;  // no index yet: an empty store, not an error
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    const auto row = RowFromJson(line, &parse_error);
    if (!row || !IsMetaRow(*row)) {
      SetError(error, root_ + "/index.jsonl:" + std::to_string(line_no) +
                          ": not a metadata line" +
                          (parse_error.empty() ? "" : " (" + parse_error + ")"));
      continue;
    }
    entries.push_back(*MetaFromRow(*row));
  }
  return entries;
}

std::optional<RunMeta> BenchDb::FindLatest(const std::string& spec_name,
                                           const std::string& exclude_sha) const {
  const std::vector<RunMeta> entries = ReadIndex(nullptr);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->spec_name == spec_name &&
        (exclude_sha.empty() || it->git_sha != exclude_sha)) {
      return *it;
    }
  }
  return std::nullopt;
}

bool BenchDb::Verify(std::string* error) const {
  std::string index_error;
  const std::vector<RunMeta> entries = ReadIndex(&index_error);
  if (!index_error.empty()) {
    SetError(error, index_error);
    return false;
  }
  for (const RunMeta& entry : entries) {
    const std::string path = RunPath(entry.git_sha, entry.spec_name);
    std::string load_error;
    const auto run = LoadRunFile(path, &load_error);
    if (!run) {
      SetError(error, "manifest entry " + entry.git_sha + "/" + entry.spec_name +
                          ": " + load_error);
      return false;
    }
    if (!run->has_meta) {
      SetError(error, path + ": missing metadata header");
      return false;
    }
    if (run->meta.git_sha != entry.git_sha || run->meta.spec_name != entry.spec_name ||
        run->meta.spec_hash != entry.spec_hash) {
      SetError(error, path + ": header disagrees with manifest (header " +
                          run->meta.git_sha + "/" + run->meta.spec_name + " hash " +
                          run->meta.spec_hash + ", manifest " + entry.git_sha + "/" +
                          entry.spec_name + " hash " + entry.spec_hash + ")");
      return false;
    }
    if (run->rows.size() != entry.points || run->meta.points != entry.points) {
      std::ostringstream message;
      message << path << ": point count mismatch (file has " << run->rows.size()
              << " rows, header says " << run->meta.points << ", manifest says "
              << entry.points << ")";
      SetError(error, message.str());
      return false;
    }
  }
  return true;
}

}  // namespace mobisim
