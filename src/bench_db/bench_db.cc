#include "src/bench_db/bench_db.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mobisim {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

// SHA and spec name become path components; reject anything that could
// escape the store or collide with the manifest.
bool SafePathComponent(const std::string& s) {
  if (s.empty() || s == "." || s == ".." || s == "index") {
    return false;
  }
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<StoredRun> LoadRunFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  StoredRun run;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    auto row = RowFromJson(line, &parse_error);
    if (!row) {
      SetError(error, path + ":" + std::to_string(line_no) + ": " + parse_error);
      return std::nullopt;
    }
    if (IsMetaRow(*row)) {
      if (line_no != 1) {
        SetError(error, path + ":" + std::to_string(line_no) +
                            ": metadata line not at start of file");
        return std::nullopt;
      }
      run.meta = *MetaFromRow(*row);
      run.has_meta = true;
      continue;
    }
    run.rows.push_back(std::move(*row));
  }
  return run;
}

std::string BenchDb::RunPath(const std::string& git_sha,
                             const std::string& spec_name) const {
  return root_ + "/" + git_sha + "/" + spec_name + ".jsonl";
}

std::optional<std::string> BenchDb::StoreRun(RunMeta meta,
                                             const std::vector<ResultRow>& rows,
                                             std::string* error) {
  if (!SafePathComponent(meta.git_sha)) {
    SetError(error, "bad git sha '" + meta.git_sha + "' for a store path");
    return std::nullopt;
  }
  if (!SafePathComponent(meta.spec_name)) {
    SetError(error, "bad spec name '" + meta.spec_name + "' for a store path");
    return std::nullopt;
  }
  meta.points = rows.size();

  const std::string path = RunPath(meta.git_sha, meta.spec_name);
  std::error_code ec;
  std::filesystem::create_directories(root_ + "/" + meta.git_sha, ec);
  if (ec) {
    SetError(error, "cannot create " + root_ + "/" + meta.git_sha + ": " + ec.message());
    return std::nullopt;
  }

  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      SetError(error, "cannot write " + path);
      return std::nullopt;
    }
    out << RowToJson(MetaToRow(meta)) << "\n";
    for (const ResultRow& row : rows) {
      out << RowToJson(row) << "\n";
    }
    if (!out) {
      SetError(error, "write failed for " + path);
      return std::nullopt;
    }
  }

  std::ofstream index(root_ + "/index.jsonl", std::ios::app);
  if (!index) {
    SetError(error, "cannot append to " + root_ + "/index.jsonl");
    return std::nullopt;
  }
  index << RowToJson(MetaToRow(meta)) << "\n";
  if (!index) {
    SetError(error, "write failed for " + root_ + "/index.jsonl");
    return std::nullopt;
  }
  return path;
}

std::vector<RunMeta> BenchDb::ReadIndex(std::string* error) const {
  std::vector<RunMeta> entries;
  std::ifstream in(root_ + "/index.jsonl");
  if (!in) {
    return entries;  // no index yet: an empty store, not an error
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    const auto row = RowFromJson(line, &parse_error);
    if (!row || !IsMetaRow(*row)) {
      SetError(error, root_ + "/index.jsonl:" + std::to_string(line_no) +
                          ": not a metadata line" +
                          (parse_error.empty() ? "" : " (" + parse_error + ")"));
      continue;
    }
    entries.push_back(*MetaFromRow(*row));
  }
  return entries;
}

std::optional<RunMeta> BenchDb::FindLatest(const std::string& spec_name,
                                           const std::string& exclude_sha) const {
  const std::vector<RunMeta> entries = ReadIndex(nullptr);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->spec_name == spec_name &&
        (exclude_sha.empty() || it->git_sha != exclude_sha)) {
      return *it;
    }
  }
  return std::nullopt;
}

bool BenchDb::Verify(std::string* error) const {
  std::string index_error;
  const std::vector<RunMeta> entries = ReadIndex(&index_error);
  if (!index_error.empty()) {
    SetError(error, index_error);
    return false;
  }
  for (const RunMeta& entry : entries) {
    const std::string path = RunPath(entry.git_sha, entry.spec_name);
    std::string load_error;
    const auto run = LoadRunFile(path, &load_error);
    if (!run) {
      SetError(error, "manifest entry " + entry.git_sha + "/" + entry.spec_name +
                          ": " + load_error);
      return false;
    }
    if (!run->has_meta) {
      SetError(error, path + ": missing metadata header");
      return false;
    }
    if (run->meta.git_sha != entry.git_sha || run->meta.spec_name != entry.spec_name ||
        run->meta.spec_hash != entry.spec_hash) {
      SetError(error, path + ": header disagrees with manifest (header " +
                          run->meta.git_sha + "/" + run->meta.spec_name + " hash " +
                          run->meta.spec_hash + ", manifest " + entry.git_sha + "/" +
                          entry.spec_name + " hash " + entry.spec_hash + ")");
      return false;
    }
    if (run->rows.size() != entry.points || run->meta.points != entry.points) {
      std::ostringstream message;
      message << path << ": point count mismatch (file has " << run->rows.size()
              << " rows, header says " << run->meta.points << ", manifest says "
              << entry.points << ")";
      SetError(error, message.str());
      return false;
    }
  }
  return true;
}

}  // namespace mobisim
