// Per-commit result store for sweep matrices.
//
// Layout, deliberately flat files so runs diff with standard tools and store
// merges are file copies:
//
//   <root>/index.jsonl                 manifest: one metadata line per run
//   <root>/<git-sha>/<spec>.jsonl      metadata header line + one row/point
//
// A run is a sweep's JSONL matrix plus its RunMeta (git SHA, spec name, spec
// fingerprint, date, host).  The manifest duplicates each run's metadata so
// tooling can enumerate the store without opening every file; Verify()
// cross-checks the two and the per-file point counts, catching truncated or
// hand-edited files.
#ifndef MOBISIM_SRC_BENCH_DB_BENCH_DB_H_
#define MOBISIM_SRC_BENCH_DB_BENCH_DB_H_

#include <optional>
#include <string>
#include <vector>

#include "src/core/result_io.h"

namespace mobisim {

// One run read back from disk.  `has_meta` is false for bare JSONL written
// without a header (e.g. mobisim_sweep --jsonl before this store existed);
// such files still diff, but spec compatibility cannot be verified.
struct StoredRun {
  RunMeta meta;
  bool has_meta = false;
  std::vector<ResultRow> rows;  // data rows only, in point order
};

// Parses a JSONL run file: an optional leading metadata line, then data rows.
// Metadata lines after the first line are rejected as malformed.
std::optional<StoredRun> LoadRunFile(const std::string& path, std::string* error);

class BenchDb {
 public:
  explicit BenchDb(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  // Path a run with this identity lands at (whether or not it exists yet).
  std::string RunPath(const std::string& git_sha, const std::string& spec_name) const;

  // Writes <root>/<meta.git_sha>/<meta.spec_name>.jsonl — metadata header
  // first, then `rows` — creating directories as needed, and appends the
  // manifest line.  meta.points is forced to rows.size().  Returns the file
  // path, or nullopt with `error` set.
  std::optional<std::string> StoreRun(RunMeta meta, const std::vector<ResultRow>& rows,
                                      std::string* error);

  // Incremental, idempotent union of `rows` into the run identified by
  // (meta.git_sha, meta.spec_name).  A missing run behaves like StoreRun.
  // An existing run must carry the same spec fingerprint (merging rows of a
  // different experiment is refused); rows join by their global `point`
  // index, the merged file is rewritten atomically in point order, and the
  // manifest entry is updated in place rather than appended — so merging
  // the same rows twice changes nothing, byte for byte.  Conflicts resolve
  // toward success: a clean row replaces a stored `_error` row for the same
  // point (a retry landed), an `_error` row never replaces a clean one, and
  // two differing clean rows for one point are an error (two different
  // sweeps are being merged).  Returns the file path, or nullopt + `error`.
  std::optional<std::string> MergeRun(RunMeta meta, const std::vector<ResultRow>& rows,
                                      std::string* error);

  // All manifest entries, oldest first.  Missing index file -> empty store.
  std::vector<RunMeta> ReadIndex(std::string* error) const;

  // Most recent manifest entry for `spec_name`, optionally skipping one SHA
  // (a PR diffing against the store excludes its own candidate run).
  std::optional<RunMeta> FindLatest(const std::string& spec_name,
                                    const std::string& exclude_sha = "") const;

  // Integrity check over the whole store: every manifest entry's file exists,
  // its header matches the manifest (sha, spec name, spec hash), and the data
  // row count matches `points`.  Returns false with the first mismatch.
  bool Verify(std::string* error) const;

 private:
  std::string root_;
};

}  // namespace mobisim

#endif  // MOBISIM_SRC_BENCH_DB_BENCH_DB_H_
