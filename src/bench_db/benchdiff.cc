#include "src/bench_db/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace mobisim {

namespace {

constexpr double kEps = 1e-12;

// Columns that identify a grid cell independent of the seed: two rows that
// agree on all of these are replicas of the same experiment.
const char* kGroupColumns[] = {
    "workload",   "device",     "scale",          "utilization",
    "dram_bytes", "sram_bytes", "capacity_bytes", "auto_capacity",
    "cleaning_policy", "ftl", "backend", "power_loss_interval_sec",
};

// Rows written for failed sweep points carry only metadata plus `_error`.
bool IsErrorRow(const ResultRow& row) { return row.Find("_error") != nullptr; }

std::string GroupKey(const ResultRow& row) {
  std::string key;
  for (const char* column : kGroupColumns) {
    key += row.Text(column, "?");
    key += '|';
  }
  return key;
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatRel(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
  return buf;
}

std::string Label(const StoredRun& run, const char* fallback) {
  if (!run.has_meta) {
    return fallback;
  }
  std::string label = run.meta.git_sha;
  if (!run.meta.created.empty()) {
    label += " (" + run.meta.created + ")";
  }
  return label;
}

std::string Verdict(const DiffReport& report) {
  if (!report.comparable) {
    return "INCOMPARABLE — " + report.incomparable_reason;
  }
  if (report.HasRegressions()) {
    std::ostringstream out;
    out << "REGRESSION — " << report.RegressionCount()
        << " cell(s) beyond the noise band";
    return out.str();
  }
  return "OK — no metric beyond the noise band";
}

}  // namespace

const char* DiffClassName(DiffClass cls) {
  switch (cls) {
    case DiffClass::kPass:
      return "pass";
    case DiffClass::kNoise:
      return "noise";
    case DiffClass::kRegression:
      return "regression";
    case DiffClass::kImprovement:
      return "improvement";
  }
  return "?";
}

const std::vector<std::string>& DefaultDiffMetrics() {
  static const std::vector<std::string> kMetrics = {
      // Energy breakdown (Fig. 2/4/5 territory).
      "total_energy_j", "device_energy_j", "dram_energy_j", "sram_energy_j",
      // Latency statistics and percentiles.
      "read_ms_mean", "read_ms_p50", "read_ms_p90", "read_ms_p95", "read_ms_p99",
      "write_ms_mean", "write_ms_p50", "write_ms_p90", "write_ms_p95", "write_ms_p99",
      "overall_ms_mean",
      // Endurance and stalls.
      "segment_erases", "blocks_copied", "max_segment_erases", "mean_segment_erases",
      "write_stalls", "stall_sec",
  };
  return kMetrics;
}

bool DiffReport::HasRegressions() const { return RegressionCount() > 0; }

std::size_t DiffReport::RegressionCount() const {
  std::size_t count = 0;
  for (const MetricSummary& summary : summaries) {
    count += summary.regressions;
  }
  return count;
}

DiffReport DiffRuns(const StoredRun& base, const StoredRun& cand,
                    const DiffOptions& options) {
  DiffReport report;
  report.base_label = Label(base, "base");
  report.cand_label = Label(cand, "candidate");
  report.spec_name = base.has_meta ? base.meta.spec_name
                                   : (cand.has_meta ? cand.meta.spec_name : "");

  if (options.require_same_spec && base.has_meta && cand.has_meta &&
      base.meta.spec_hash != cand.meta.spec_hash) {
    report.comparable = false;
    report.incomparable_reason = "spec fingerprints differ (base " +
                                 base.meta.spec_hash + ", candidate " +
                                 cand.meta.spec_hash + ")";
    return report;
  }

  // Join by stable point index.
  std::map<std::size_t, const ResultRow*> base_by_point;
  std::map<std::size_t, const ResultRow*> cand_by_point;
  for (const ResultRow& row : base.rows) {
    base_by_point[static_cast<std::size_t>(row.Number("point", -1))] = &row;
  }
  for (const ResultRow& row : cand.rows) {
    cand_by_point[static_cast<std::size_t>(row.Number("point", -1))] = &row;
  }
  if (base_by_point.size() != base.rows.size() ||
      cand_by_point.size() != cand.rows.size()) {
    report.comparable = false;
    report.incomparable_reason = "duplicate point indices in a run";
    return report;
  }
  if (base_by_point.size() != cand_by_point.size()) {
    std::ostringstream reason;
    reason << "point counts differ (base " << base_by_point.size() << ", candidate "
           << cand_by_point.size() << ")";
    report.comparable = false;
    report.incomparable_reason = reason.str();
    return report;
  }
  for (const auto& [point, row] : base_by_point) {
    (void)row;
    if (cand_by_point.find(point) == cand_by_point.end()) {
      report.comparable = false;
      report.incomparable_reason =
          "point " + std::to_string(point) + " missing from the candidate run";
      return report;
    }
  }

  // A point that failed in either run is incomparable, not a regression:
  // drop it from every cell and count it as skipped.
  for (auto it = base_by_point.begin(); it != base_by_point.end();) {
    const ResultRow* cand_row = cand_by_point.at(it->first);
    if (IsErrorRow(*it->second) || IsErrorRow(*cand_row)) {
      cand_by_point.erase(it->first);
      it = base_by_point.erase(it);
      ++report.skipped_points;
    } else {
      ++it;
    }
  }
  report.points = base_by_point.size();

  // Replica groups over the base run: point -> group, group -> member rows.
  std::map<std::string, std::vector<const ResultRow*>> groups;
  for (const ResultRow& row : base.rows) {
    if (IsErrorRow(row)) {
      continue;
    }
    groups[GroupKey(row)].push_back(&row);
  }

  // Probe metric presence on a healthy row; error rows carry no metrics.
  const auto has_metric = [](const std::vector<ResultRow>& rows,
                             const std::string& metric) {
    for (const ResultRow& row : rows) {
      if (!IsErrorRow(row)) {
        return row.Find(metric) != nullptr;
      }
    }
    return true;  // no healthy rows: nothing to compare, nothing to skip
  };

  const std::vector<std::string>& metrics =
      options.metrics.empty() ? DefaultDiffMetrics() : options.metrics;
  for (const std::string& metric : metrics) {
    const bool in_base = has_metric(base.rows, metric);
    const bool in_cand = has_metric(cand.rows, metric);
    if (!in_base || !in_cand) {
      report.skipped_metrics.push_back(metric);
      continue;
    }

    // Seed-noise band per replica group: observed max-min spread.
    std::map<std::string, double> group_spread;
    for (const auto& [key, members] : groups) {
      if (members.size() < 2) {
        continue;
      }
      double lo = members.front()->Number(metric);
      double hi = lo;
      for (const ResultRow* member : members) {
        const double v = member->Number(metric);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      group_spread[key] = hi - lo;
    }

    MetricSummary summary;
    summary.metric = metric;
    double worst_regression = 0.0;
    double worst_any = 0.0;
    std::size_t worst_regression_point = 0;
    std::size_t worst_any_point = 0;

    for (const auto& [point, base_row] : base_by_point) {
      const ResultRow* cand_row = cand_by_point.at(point);
      MetricDiff cell;
      cell.point = point;
      cell.metric = metric;
      cell.base = base_row->Number(metric);
      cell.cand = cand_row->Number(metric);
      cell.delta = cell.cand - cell.base;
      cell.rel = cell.delta / std::max(std::abs(cell.base), kEps);

      const auto spread = group_spread.find(GroupKey(*base_row));
      if (spread != group_spread.end()) {
        cell.from_replicas = true;
        cell.allowed = spread->second * options.noise_mult;
        report.noise_from_replicas = true;
      } else {
        cell.allowed = options.rel_threshold * std::abs(cell.base);
      }
      cell.allowed =
          std::max({cell.allowed, options.min_rel_floor * std::abs(cell.base), kEps});

      if (std::abs(cell.delta) <= options.min_rel_floor * std::abs(cell.base) + kEps) {
        cell.cls = DiffClass::kPass;
        ++summary.pass;
      } else if (std::abs(cell.delta) <= cell.allowed) {
        cell.cls = DiffClass::kNoise;
        ++summary.noise;
      } else if (cell.delta > 0.0) {
        // All tracked metrics are lower-is-better.
        cell.cls = DiffClass::kRegression;
        ++summary.regressions;
      } else {
        cell.cls = DiffClass::kImprovement;
        ++summary.improvements;
      }

      if (std::abs(cell.rel) > std::abs(worst_any)) {
        worst_any = cell.rel;
        worst_any_point = point;
      }
      if (cell.cls == DiffClass::kRegression &&
          std::abs(cell.rel) > std::abs(worst_regression)) {
        worst_regression = cell.rel;
        worst_regression_point = point;
      }
      if (cell.cls == DiffClass::kRegression || cell.cls == DiffClass::kImprovement) {
        report.flagged.push_back(cell);
      }
    }

    if (summary.regressions > 0) {
      summary.worst_rel = worst_regression;
      summary.worst_point = worst_regression_point;
    } else {
      summary.worst_rel = worst_any;
      summary.worst_point = worst_any_point;
    }
    report.summaries.push_back(std::move(summary));
  }
  return report;
}

std::string RenderReportText(const DiffReport& report) {
  std::ostringstream out;
  out << "benchdiff";
  if (!report.spec_name.empty()) {
    out << ": " << report.spec_name;
  }
  out << "\n  base      " << report.base_label << "\n  candidate " << report.cand_label
      << "\n";
  if (!report.comparable) {
    out << "verdict: " << Verdict(report) << "\n";
    return out.str();
  }
  out << "  " << report.points << " points joined; noise band "
      << (report.noise_from_replicas ? "from seed-replica spread"
                                     : "from fixed relative threshold")
      << "\n";
  if (report.skipped_points > 0) {
    out << "  " << report.skipped_points
        << " failed point(s) skipped (incomparable, not regressions)\n";
  }
  out << "\n";

  char line[160];
  std::snprintf(line, sizeof(line), "%-22s %5s %5s %5s %5s  %s\n", "metric", "pass",
                "noise", "regr", "impr", "worst");
  out << line;
  for (const MetricSummary& s : report.summaries) {
    std::snprintf(line, sizeof(line), "%-22s %5zu %5zu %5zu %5zu  %s @p%zu\n",
                  s.metric.c_str(), s.pass, s.noise, s.regressions, s.improvements,
                  FormatRel(s.worst_rel).c_str(), s.worst_point);
    out << line;
  }
  for (const std::string& metric : report.skipped_metrics) {
    out << "  (skipped " << metric << ": not present in both runs)\n";
  }

  bool header_done = false;
  for (const MetricDiff& cell : report.flagged) {
    if (cell.cls != DiffClass::kRegression) {
      continue;
    }
    if (!header_done) {
      out << "\nregressions:\n";
      header_done = true;
    }
    out << "  point " << cell.point << "  " << cell.metric << "  "
        << FormatValue(cell.base) << " -> " << FormatValue(cell.cand) << "  ("
        << FormatRel(cell.rel) << ", allowed +/-"
        << FormatValue(cell.allowed) << (cell.from_replicas ? ", replica band" : "")
        << ")\n";
  }
  out << "\nverdict: " << Verdict(report) << "\n";
  return out.str();
}

std::string RenderReportMarkdown(const DiffReport& report) {
  std::ostringstream out;
  out << "## benchdiff";
  if (!report.spec_name.empty()) {
    out << ": `" << report.spec_name << "`";
  }
  out << "\n\n";
  out << "**base** `" << report.base_label << "` vs **candidate** `"
      << report.cand_label << "`";
  if (!report.comparable) {
    out << "\n\n**Verdict: :no_entry: " << Verdict(report) << "**\n";
    return out.str();
  }
  out << " — " << report.points << " points, noise band "
      << (report.noise_from_replicas ? "from seed-replica spread"
                                     : "from fixed relative threshold");
  if (report.skipped_points > 0) {
    out << ", " << report.skipped_points << " failed point(s) skipped";
  }
  out << "\n\n";

  out << "| Metric | Pass | Noise | Regressions | Improvements | Worst |\n";
  out << "|---|---:|---:|---:|---:|---:|\n";
  for (const MetricSummary& s : report.summaries) {
    out << "| `" << s.metric << "` | " << s.pass << " | " << s.noise << " | "
        << s.regressions << " | " << s.improvements << " | " << FormatRel(s.worst_rel)
        << " @p" << s.worst_point << " |\n";
  }
  if (!report.skipped_metrics.empty()) {
    out << "\nSkipped (absent from a run): ";
    for (std::size_t i = 0; i < report.skipped_metrics.size(); ++i) {
      out << (i > 0 ? ", " : "") << "`" << report.skipped_metrics[i] << "`";
    }
    out << "\n";
  }

  bool header_done = false;
  for (const MetricDiff& cell : report.flagged) {
    if (cell.cls != DiffClass::kRegression) {
      continue;
    }
    if (!header_done) {
      out << "\n### Regressions\n\n";
      out << "| Point | Metric | Base | Candidate | Delta | Allowed |\n";
      out << "|---:|---|---:|---:|---:|---:|\n";
      header_done = true;
    }
    out << "| " << cell.point << " | `" << cell.metric << "` | "
        << FormatValue(cell.base) << " | " << FormatValue(cell.cand) << " | "
        << FormatRel(cell.rel) << " | ±" << FormatValue(cell.allowed) << " |\n";
  }

  out << "\n**Verdict: " << (report.HasRegressions() ? ":x: " : ":white_check_mark: ")
      << Verdict(report) << "**\n";
  return out.str();
}

}  // namespace mobisim
