// Regression diffing of two sweep runs of the same spec.
//
// Runs are joined by stable point index (the sweep engine's enumeration
// order), per-metric deltas are computed for every point, and each delta is
// classified against a noise band:
//
//   pass         base and candidate agree to <= min_rel_floor
//   noise        |delta| within the band
//   regression   worse than the band allows (all tracked metrics are
//                lower-is-better: energy, latency, erases, stalls)
//   improvement  better than the band allows
//
// Failed sweep points (rows carrying an `_error` column) are excluded from
// every cell on both sides and counted in DiffReport::skipped_points — a
// point that crashed is incomparable, not a regression.
//
// The band is estimated from seed-replicated points when the spec carried
// `replicas > 1`: rows are grouped by their full configuration minus
// seed/replica, and the observed max-min spread within a point's group —
// what seed choice alone does to the metric — times `noise_mult` is the
// band.  Without replicas the band falls back to `rel_threshold * |base|`.
// Either way, drift below `min_rel_floor * |base|` is always tolerated
// (cross-compiler floating-point slack).
#ifndef MOBISIM_SRC_BENCH_DB_BENCHDIFF_H_
#define MOBISIM_SRC_BENCH_DB_BENCHDIFF_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/bench_db/bench_db.h"

namespace mobisim {

enum class DiffClass { kPass, kNoise, kRegression, kImprovement };

const char* DiffClassName(DiffClass cls);

// Verdict for one (point, metric) cell.
struct MetricDiff {
  std::size_t point = 0;
  std::string metric;
  double base = 0.0;
  double cand = 0.0;
  double delta = 0.0;     // cand - base
  double rel = 0.0;       // delta / max(|base|, eps)
  double allowed = 0.0;   // absolute band the delta was judged against
  bool from_replicas = false;  // band from replica spread vs fallback threshold
  DiffClass cls = DiffClass::kPass;
};

// Aggregation of one metric across all joined points.
struct MetricSummary {
  std::string metric;
  std::size_t pass = 0;
  std::size_t noise = 0;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  // Largest |rel| among regressions (or, with none, among all cells).
  double worst_rel = 0.0;
  std::size_t worst_point = 0;
};

struct DiffOptions {
  // Metrics to compare; empty selects DefaultDiffMetrics().  Metrics absent
  // from either run are skipped (recorded in DiffReport::skipped_metrics).
  std::vector<std::string> metrics;
  // Fallback relative band when a point has no replica group (spread of a
  // single sample is unknowable).
  double rel_threshold = 0.05;
  // Safety multiplier on the observed replica spread.
  double noise_mult = 1.5;
  // Relative drift always tolerated, replicas or not.
  double min_rel_floor = 0.01;
  // Refuse to diff runs whose metadata carries different spec fingerprints.
  bool require_same_spec = true;
};

struct DiffReport {
  // False when the runs cannot be meaningfully compared (different spec
  // hashes, mismatched point sets); `incomparable_reason` says why and no
  // cells are classified.
  bool comparable = true;
  std::string incomparable_reason;

  std::string base_label;
  std::string cand_label;
  std::string spec_name;
  std::size_t points = 0;         // joined (healthy) points
  // Points excluded because either run's row carries `_error` (the sweep
  // point failed there); never classified, never a regression.
  std::size_t skipped_points = 0;
  bool noise_from_replicas = false;  // any band came from replica spread

  std::vector<MetricSummary> summaries;       // one per compared metric
  std::vector<MetricDiff> flagged;            // regressions + improvements
  std::vector<std::string> skipped_metrics;   // requested but absent

  bool HasRegressions() const;
  std::size_t RegressionCount() const;
};

// Energy breakdown, latency stats and percentiles, endurance and stall
// counters — the quantities the paper's conclusions rest on.
const std::vector<std::string>& DefaultDiffMetrics();

DiffReport DiffRuns(const StoredRun& base, const StoredRun& cand,
                    const DiffOptions& options);

// Plain-text report (for terminals and logs).
std::string RenderReportText(const DiffReport& report);
// GitHub-flavoured Markdown (for $GITHUB_STEP_SUMMARY).
std::string RenderReportMarkdown(const DiffReport& report);

}  // namespace mobisim

#endif  // MOBISIM_SRC_BENCH_DB_BENCHDIFF_H_
