#!/usr/bin/env bash
# Regenerate the committed benchdiff baseline (bench_db/baseline/) from the
# pinned CI reference spec.
#
# Before blessing anything, the script verifies the engine's determinism
# contract on this machine: the reference sweep must produce byte-identical
# data rows at several --jobs values.  A baseline that depends on thread
# count would make the CI gate flaky, so a mismatch aborts the refresh.
#
# Usage: scripts/update_baseline.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

SPEC=specs/ci_reference.spec
NAME=ci_reference
ABLATION_SPEC=specs/ablation_smoke.spec
ABLATION_NAME=ablation
BUILD=${1:-build}
SWEEP=$BUILD/examples/mobisim_sweep
BENCH=$BUILD/examples/mobisim_bench
DIFF=$BUILD/examples/mobisim_benchdiff

if [ ! -x "$SWEEP" ] || [ ! -x "$BENCH" ] || [ ! -x "$DIFF" ]; then
  cmake -B "$BUILD" -S .
  cmake --build "$BUILD" -j "$(nproc)" --target mobisim_sweep mobisim_bench mobisim_benchdiff
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "update_baseline: checking determinism across --jobs values"
for jobs in 1 3 "$(nproc)"; do
  "$SWEEP" --spec "$SPEC" --jobs "$jobs" --jsonl "$tmp/jobs$jobs.jsonl" --quiet
  # Strip the metadata header: it carries the timestamp and hostname, which
  # legitimately differ between runs.  Every data row must match exactly.
  grep -v '"_meta"' "$tmp/jobs$jobs.jsonl" > "$tmp/jobs$jobs.data"
done
for jobs in 3 "$(nproc)"; do
  if ! cmp -s "$tmp/jobs1.data" "$tmp/jobs$jobs.data"; then
    echo "update_baseline: --jobs 1 and --jobs $jobs disagree; refusing to" \
         "bless a nondeterministic baseline" >&2
    exit 1
  fi
done

# Rebuild the store from scratch so the manifest holds exactly one entry for
# the blessed run (StoreRun appends; stale entries would accumulate).  The
# fresh store is staged in a sibling directory on the same filesystem and
# only swapped in after it verifies, so a failure partway through can never
# leave a missing or half-written bench_db/ behind.
stage=$(mktemp -d "$PWD/bench_db.stage.XXXXXX")
trap 'rm -rf "$tmp" "$stage"' EXIT
"$SWEEP" --spec "$SPEC" --db "$stage" --name "$NAME" --sha baseline --quiet

# The FTL policy ablation baseline: every translation/cleaning policy at
# both bounding utilizations, gated the same way as the reference sweep.
"$SWEEP" --spec "$ABLATION_SPEC" --db "$stage" --name "$ABLATION_NAME" \
         --sha baseline --quiet

# The throughput baseline is machine-speed data, not simulator output, so it
# skips the determinism check; run it serial and warm-cached so the recorded
# noise band reflects timing jitter alone, not thread contention or trace
# generation.
"$BENCH" run throughput --jobs 1 --trace-cache "$tmp/tc" \
         --db "$stage" --name throughput --sha baseline --quiet > /dev/null
"$DIFF" --verify-db "$stage" --quiet

# Sanity: each fresh baseline must gate itself clean.
"$DIFF" --base "$stage/baseline/$NAME.jsonl" \
        --cand "$stage/baseline/$NAME.jsonl" --quiet
"$DIFF" --base "$stage/baseline/$ABLATION_NAME.jsonl" \
        --cand "$stage/baseline/$ABLATION_NAME.jsonl" --quiet
"$DIFF" --base "$stage/baseline/throughput.jsonl" \
        --cand "$stage/baseline/throughput.jsonl" \
        --metrics ns_per_record,sec_per_point --quiet

# Atomic swap: the old store is whole until the verified one replaces it.
old=
if [ -d bench_db ]; then
  old=$(mktemp -d "$PWD/bench_db.old.XXXXXX")
  mv bench_db "$old/prev"
fi
mv "$stage" bench_db
if [ -n "$old" ]; then
  rm -rf "$old"
fi

# Provenance, straight from each baseline's _meta header: what spec (by name
# and fingerprint), which machine, and when.  This is what a reviewer of the
# bench_db/ diff needs to judge the refresh without rerunning it.
echo "update_baseline: regenerated baselines:"
for baseline in bench_db/baseline/*.jsonl; do
  python3 - "$baseline" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    meta = json.loads(f.readline())
    rows = sum(1 for _ in f)
print(f"  {path}: spec={meta.get('spec_name', '?')}"
      f" spec_hash={meta.get('spec_hash', '?')}"
      f" rows={rows} host={meta.get('host', '?')}"
      f" created={meta.get('created', '?')}")
EOF
done
echo "update_baseline: bench_db/baseline/{$NAME,$ABLATION_NAME,throughput}.jsonl refreshed; commit bench_db/"
